//===- portfolio_test.cpp - Lane racing, schedule learning, lane stats ---===//
//
// The portfolio's contract is sat/unsat-equivalence with the single-lane
// pipeline: whichever lane wins the race, the committed outcome must be
// the one predict() would have produced alone. The golden fixture grid
// (tests/golden_predictions.inc) pins exactly that surface, so the sweep
// below races every fixture and holds the winner to the fixture result —
// and replay-validates every winning Sat model, because a cross-strategy
// sat is only sound together with a concrete unserializable execution.
//
//===----------------------------------------------------------------------===//

#include "apps/AppFramework.h"
#include "cache/LaneStats.h"
#include "engine/Engine.h"
#include "engine/JobIo.h"
#include "portfolio/Portfolio.h"
#include "support/Fs.h"
#include "support/Json.h"
#include "support/StrUtil.h"
#include "validate/Validate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace isopredict;
using namespace isopredict::engine;
using namespace isopredict::portfolio;

namespace {

struct GoldenCase {
  const char *App;
  IsolationLevel Level;
  Strategy Strat;
  uint64_t Seed;
  const char *Result;
  const char *Boundary;
  const char *Cut;
  const char *Witness;
};

const GoldenCase GoldenCases[] = {
#include "golden_predictions.inc"
};

/// Same margin as golden_test: fixture configurations solve in seconds.
constexpr unsigned GoldenTimeoutMs = 300000;

History observedHistory(const std::string &App, uint64_t Seed) {
  auto Application = makeApplication(App);
  DataStore::Options O;
  O.Mode = StoreMode::SerialObserved;
  O.Level = IsolationLevel::Serializable;
  O.Seed = Seed;
  DataStore Store(O);
  return WorkloadRunner::run(*Application, Store, WorkloadConfig::small(Seed))
      .Hist;
}

std::string scratchDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string Dir =
      pathJoin(testing::TempDir(),
               formatString("isopredict-%s-%ld-%u", Tag,
                            static_cast<long>(::getpid()),
                            Counter.fetch_add(1)));
  EXPECT_TRUE(createDirectories(Dir));
  return Dir;
}

class PortfolioGolden : public ::testing::TestWithParam<size_t> {};

} // namespace

//===----------------------------------------------------------------------===
// Golden sweep: every fixture, raced, must commit the fixture outcome
//===----------------------------------------------------------------------===

TEST_P(PortfolioGolden, RaceCommitsFixtureOutcome) {
  const GoldenCase &C = GoldenCases[GetParam()];
  SCOPED_TRACE(formatString("%s %s %s seed=%llu", C.App, toString(C.Level),
                            toString(C.Strat),
                            static_cast<unsigned long long>(C.Seed)));
  History H = observedHistory(C.App, C.Seed);

  PredictOptions Base;
  Base.Level = C.Level;
  Base.Strat = C.Strat;
  Base.TimeoutMs = GoldenTimeoutMs;

  std::vector<LaneSpec> Lanes = buildLanes(Base, 4);
  ASSERT_GE(Lanes.size(), 2u);
  EXPECT_EQ(Lanes[0].Name, "reference");
  EXPECT_EQ(Lanes[0].Strat, C.Strat);
  EXPECT_TRUE(Lanes[0].SameStrategy);

  Validator Validate = [&](const Prediction &P) {
    auto Replay = makeApplication(C.App);
    return validatePrediction(*Replay, WorkloadConfig::small(C.Seed), H, P,
                              C.Level, GoldenTimeoutMs);
  };

  RaceResult R = race(H, Base, Lanes, Schedule{}, Validate);

  // Every fixture decides well within the timeout, so some lane must
  // have committed — and committed the single-lane answer.
  ASSERT_GE(R.Winner, 0);
  const LaneRun &W = R.Lanes[static_cast<size_t>(R.Winner)];
  EXPECT_TRUE(W.Definitive);
  EXPECT_STREQ(toString(W.P.Result), C.Result);

  // The reference lane always launches, and its generation is never
  // interrupted (only the solver check is): even when another lane wins
  // first, it carries exactly the single-lane literal count.
  EXPECT_TRUE(R.Lanes[0].Launched);
  Prediction Solo = predict(H, Base);
  EXPECT_EQ(R.Lanes[0].P.Stats.NumLiterals, Solo.Stats.NumLiterals);

  // A winning Sat model must be a concrete unserializability proof: a
  // non-diverged validating replay follows the predicted reads exactly
  // and is therefore unserializable.
  if (W.P.Result == SmtResult::Sat) {
    ASSERT_TRUE(W.Val.has_value());
    EXPECT_TRUE(W.Val->St ==
                    ValidationResult::Status::ValidatedUnserializable ||
                W.Val->Diverged)
        << "non-diverged replay of a winning lane's model was "
           "serializable (validation: "
        << toString(W.Val->St) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PortfolioGolden,
    ::testing::Range<size_t>(0, std::size(GoldenCases)),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      const GoldenCase &C = GoldenCases[Info.param];
      std::string Name =
          formatString("%s_%s_%s_s%llu", C.App, toString(C.Level),
                       toString(C.Strat),
                       static_cast<unsigned long long>(C.Seed));
      for (char &Ch : Name)
        if (!std::isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });

//===----------------------------------------------------------------------===
// Lane taxonomy
//===----------------------------------------------------------------------===

TEST(PortfolioLanes, ReferenceLaneIsTheQueryConfiguration) {
  PredictOptions Q;
  Q.Strat = Strategy::ApproxStrict;
  Q.PruneFormula = true;
  std::vector<LaneSpec> Lanes = buildLanes(Q, 8);
  ASSERT_FALSE(Lanes.empty());
  EXPECT_EQ(Lanes[0].Name, "reference");
  EXPECT_EQ(Lanes[0].Strat, Strategy::ApproxStrict);
  EXPECT_TRUE(Lanes[0].Prune);
  EXPECT_TRUE(Lanes[0].SolverParams.empty());
  EXPECT_TRUE(Lanes[0].SameStrategy);
  EXPECT_TRUE(Lanes[0].AcceptSat);
  EXPECT_TRUE(Lanes[0].AcceptUnsat);
  // MaxLanes caps the taxonomy; 1 degenerates to the reference lane.
  EXPECT_EQ(buildLanes(Q, 1).size(), 1u);
  EXPECT_LE(buildLanes(Q, 3).size(), 3u);
}

TEST(PortfolioLanes, CrossStrategyLanesFollowTheSoundnessLattice) {
  // An Exact query may accept an Approx-Strict lane's sat only (the
  // approximation is a sufficient condition), never its unsat.
  PredictOptions Exact;
  Exact.Strat = Strategy::ExactStrict;
  for (const LaneSpec &L : buildLanes(Exact, 8)) {
    if (L.Strat == Strategy::ExactStrict)
      continue;
    EXPECT_EQ(L.Strat, Strategy::ApproxStrict) << L.Name;
    EXPECT_FALSE(L.SameStrategy) << L.Name;
    EXPECT_TRUE(L.AcceptSat) << L.Name;
    EXPECT_FALSE(L.AcceptUnsat) << L.Name;
  }

  // An Approx-Strict query may accept an Exact lane's unsat only (the
  // exact encoding is complete), never its sat.
  PredictOptions Approx;
  Approx.Strat = Strategy::ApproxStrict;
  for (const LaneSpec &L : buildLanes(Approx, 8)) {
    if (L.Strat == Strategy::ApproxStrict)
      continue;
    EXPECT_EQ(L.Strat, Strategy::ExactStrict) << L.Name;
    EXPECT_FALSE(L.SameStrategy) << L.Name;
    EXPECT_FALSE(L.AcceptSat) << L.Name;
    EXPECT_TRUE(L.AcceptUnsat) << L.Name;
  }

  // Approx-Relaxed changes the predicted-history semantics: lanes stay
  // within the strategy.
  PredictOptions Relaxed;
  Relaxed.Strat = Strategy::ApproxRelaxed;
  for (const LaneSpec &L : buildLanes(Relaxed, 8)) {
    EXPECT_EQ(L.Strat, Strategy::ApproxRelaxed) << L.Name;
    EXPECT_TRUE(L.SameStrategy) << L.Name;
  }
}

//===----------------------------------------------------------------------===
// Schedule learning
//===----------------------------------------------------------------------===

TEST(PortfolioSchedule, NoHistoryLaunchesEverythingAtOnce) {
  PredictOptions Q;
  std::vector<LaneSpec> Lanes = buildLanes(Q, 4);
  Schedule S = scheduleFromStats(Lanes, {});
  ASSERT_EQ(S.DelaySeconds.size(), Lanes.size());
  for (double D : S.DelaySeconds)
    EXPECT_EQ(D, 0.0);
}

TEST(PortfolioSchedule, BestLaneLaunchesFirstOthersWaitItsGrace) {
  PredictOptions Q;
  std::vector<LaneSpec> Lanes = buildLanes(Q, 4);
  ASSERT_GE(Lanes.size(), 3u);

  // Lane [1] dominates history: 8 wins averaging 2 s.
  std::vector<cache::LaneTally> Stats;
  Stats.push_back({Lanes[1].Name, /*Runs=*/10, /*Wins=*/8, /*Losses=*/2,
                   /*Timeouts=*/0, /*Seconds=*/20.0});
  Stats.push_back({Lanes[2].Name, /*Runs=*/10, /*Wins=*/2, /*Losses=*/8,
                   /*Timeouts=*/0, /*Seconds=*/10.0});

  Schedule S = scheduleFromStats(Lanes, Stats);
  ASSERT_EQ(S.DelaySeconds.size(), Lanes.size());
  // The favorite and the reference lane launch immediately; everyone
  // else is held back by 1.5 x the favorite's 2 s mean.
  EXPECT_EQ(S.DelaySeconds[0], 0.0);
  EXPECT_EQ(S.DelaySeconds[1], 0.0);
  for (size_t I = 2; I < S.DelaySeconds.size(); ++I)
    EXPECT_NEAR(S.DelaySeconds[I], 3.0, 1e-9) << "lane " << I;
}

TEST(PortfolioSchedule, GraceDelayIsClamped) {
  PredictOptions Q;
  std::vector<LaneSpec> Lanes = buildLanes(Q, 4);
  ASSERT_GE(Lanes.size(), 3u);

  // A favorite with a 100 s mean must not hold the field back forever.
  std::vector<cache::LaneTally> Slow;
  Slow.push_back({Lanes[1].Name, 2, 2, 0, 0, 200.0});
  Schedule S = scheduleFromStats(Lanes, Slow);
  for (size_t I = 2; I < S.DelaySeconds.size(); ++I)
    EXPECT_NEAR(S.DelaySeconds[I], 5.0, 1e-9);

  // A sub-millisecond favorite still gives the field a real stagger.
  std::vector<cache::LaneTally> Fast;
  Fast.push_back({Lanes[1].Name, 5, 5, 0, 0, 0.001});
  S = scheduleFromStats(Lanes, Fast);
  for (size_t I = 2; I < S.DelaySeconds.size(); ++I)
    EXPECT_NEAR(S.DelaySeconds[I], 0.05, 1e-9);
}

TEST(PortfolioSchedule, RecordRaceAccumulatesTallies) {
  PredictOptions Q;
  std::vector<LaneSpec> Lanes = buildLanes(Q, 4);
  ASSERT_GE(Lanes.size(), 3u);

  RaceResult R;
  R.Lanes.resize(Lanes.size());
  for (size_t I = 0; I < Lanes.size(); ++I)
    R.Lanes[I].Spec = Lanes[I];
  R.Lanes[0].Launched = true;
  R.Lanes[0].Seconds = 2.0;
  R.Lanes[0].P.TimedOut = true;
  R.Lanes[1].Launched = true;
  R.Lanes[1].Seconds = 0.5;
  R.Winner = 1;
  // Lane 2 never launched (staggered out): it must not accumulate.

  std::vector<cache::LaneTally> T;
  recordRace(T, R);
  recordRace(T, R);

  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].Lane, Lanes[0].Name);
  EXPECT_EQ(T[0].Runs, 2u);
  EXPECT_EQ(T[0].Wins, 0u);
  EXPECT_EQ(T[0].Losses, 2u);
  EXPECT_EQ(T[0].Timeouts, 2u);
  EXPECT_NEAR(T[0].Seconds, 4.0, 1e-9);
  EXPECT_EQ(T[1].Lane, Lanes[1].Name);
  EXPECT_EQ(T[1].Wins, 2u);
  EXPECT_EQ(T[1].Losses, 0u);
  EXPECT_NEAR(T[1].Seconds, 1.0, 1e-9);
}

//===----------------------------------------------------------------------===
// Lane-stats persistence
//===----------------------------------------------------------------------===

namespace {

JobSpec laneStatsSpec() {
  JobSpec S;
  S.Kind = JobKind::Predict;
  S.App = "smallbank";
  S.Cfg = WorkloadConfig::small(1);
  S.Level = IsolationLevel::Causal;
  S.Strat = Strategy::ApproxStrict;
  return S;
}

} // namespace

TEST(LaneStats, KeyIsSeedIndependent) {
  JobSpec A = laneStatsSpec();
  JobSpec B = laneStatsSpec();
  B.Cfg = WorkloadConfig::small(7);
  // Lane performance is a property of the query *class*, not the
  // concrete workload seed: every seed shares one tally.
  EXPECT_EQ(cache::laneStatsKey(A), cache::laneStatsKey(B));

  JobSpec C = laneStatsSpec();
  C.Strat = Strategy::ExactStrict;
  EXPECT_NE(cache::laneStatsKey(A), cache::laneStatsKey(C));
  JobSpec D = laneStatsSpec();
  D.Cfg = WorkloadConfig::large(1);
  EXPECT_NE(cache::laneStatsKey(A), cache::laneStatsKey(D));
}

TEST(LaneStats, RoundTripsThroughDisk) {
  std::string Dir = scratchDir("lanestats");
  cache::LaneStatsStore Store(Dir);
  std::string Key = cache::laneStatsKey(laneStatsSpec());

  EXPECT_TRUE(Store.load(Key).empty()) << "cold store must be empty";

  std::vector<cache::LaneTally> T;
  T.push_back({"reference", 3, 1, 2, 1, 4.5});
  T.push_back({"exact-refuter", 3, 2, 1, 0, 1.25});
  ASSERT_TRUE(Store.store(Key, T));

  std::vector<cache::LaneTally> Back = Store.load(Key);
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0].Lane, "reference");
  EXPECT_EQ(Back[0].Runs, 3u);
  EXPECT_EQ(Back[0].Wins, 1u);
  EXPECT_EQ(Back[0].Losses, 2u);
  EXPECT_EQ(Back[0].Timeouts, 1u);
  EXPECT_NEAR(Back[0].Seconds, 4.5, 1e-9);
  EXPECT_EQ(Back[1].Lane, "exact-refuter");
  EXPECT_NEAR(Back[1].Seconds, 1.25, 1e-9);

  // Different key: different file, still empty.
  JobSpec Other = laneStatsSpec();
  Other.Level = IsolationLevel::ReadAtomic;
  EXPECT_TRUE(Store.load(cache::laneStatsKey(Other)).empty());
}

TEST(LaneStats, CorruptionIsBenign) {
  std::string Dir = scratchDir("lanestats-corrupt");
  cache::LaneStatsStore Store(Dir);
  std::string Key = cache::laneStatsKey(laneStatsSpec());
  std::vector<cache::LaneTally> T;
  T.push_back({"reference", 1, 1, 0, 0, 0.5});
  ASSERT_TRUE(Store.store(Key, T));
  std::string Path = Store.entryPath(Key);

  auto overwrite = [&](const std::string &Content) {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Content;
  };

  // Truncated JSON, non-JSON garbage, a wrong schema, and a key
  // mismatch (hash collision shape) all load as "no history" — the
  // stats are advisory, a broken file only costs the learned stagger.
  overwrite("{\"schema\": \"isopredict-lane-st");
  EXPECT_TRUE(Store.load(Key).empty());
  overwrite("not json at all");
  EXPECT_TRUE(Store.load(Key).empty());
  overwrite("{\"schema\": \"some-other-tool/9\", \"lanes\": []}");
  EXPECT_TRUE(Store.load(Key).empty());
  ASSERT_TRUE(Store.store(Key, T));
  std::string Good;
  {
    std::ifstream In(Path);
    Good.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  }
  std::string Swapped = Good;
  size_t At = Swapped.find("\"key\"");
  ASSERT_NE(At, std::string::npos);
  Swapped.replace(At, 5, "\"kee\"");
  overwrite(Swapped);
  EXPECT_TRUE(Store.load(Key).empty());

  // An ill-typed lane entry rejects the whole file, not just the entry.
  overwrite(Good); // sanity: the pristine bytes still load
  EXPECT_EQ(Store.load(Key).size(), 1u);
}

//===----------------------------------------------------------------------===
// JobResult wire format: lanes, winning_lane, canceled
//===----------------------------------------------------------------------===

TEST(PortfolioJobIo, LaneRecordsRoundTrip) {
  JobResult R;
  R.Spec = laneStatsSpec();
  R.Ok = true;
  R.Outcome = SmtResult::Sat;
  R.WinningLane = "exact-refuter";
  LaneResult Ref;
  Ref.Name = "reference";
  Ref.Strat = Strategy::ApproxStrict;
  Ref.Outcome = SmtResult::Unknown;
  Ref.Canceled = true;
  Ref.GenSeconds = 0.25;
  Ref.SolveSeconds = 1.5;
  Ref.Literals = 1234;
  Ref.Seconds = 1.8;
  LaneResult Win;
  Win.Name = "exact-refuter";
  Win.Strat = Strategy::ExactStrict;
  Win.Prune = true;
  Win.Outcome = SmtResult::Sat;
  Win.Seconds = 0.9;
  Win.Stats.Collected = true;
  Win.Stats.Conflicts = 42;
  LaneResult Held;
  Held.Name = "arith2";
  Held.Skipped = true;
  R.Lanes = {Ref, Win, Held};

  ReportOptions Timed;
  Timed.IncludeTimings = true;
  JsonWriter J;
  J.openObject();
  writeJobFields(J, R, Timed);
  J.closeObject();
  std::string Json = J.take();

  std::string Error;
  std::optional<JsonValue> Doc = parseJson(Json, &Error);
  ASSERT_TRUE(Doc) << Error;
  std::optional<JobResult> Back = jobResultFromJson(*Doc, &Error);
  ASSERT_TRUE(Back) << Error;

  EXPECT_EQ(Back->WinningLane, "exact-refuter");
  ASSERT_EQ(Back->Lanes.size(), 3u);
  EXPECT_EQ(Back->Lanes[0].Name, "reference");
  EXPECT_EQ(Back->Lanes[0].Strat, Strategy::ApproxStrict);
  EXPECT_TRUE(Back->Lanes[0].Canceled);
  EXPECT_FALSE(Back->Lanes[0].Skipped);
  EXPECT_EQ(Back->Lanes[0].Literals, 1234u);
  EXPECT_NEAR(Back->Lanes[0].SolveSeconds, 1.5, 1e-9);
  EXPECT_EQ(Back->Lanes[1].Name, "exact-refuter");
  EXPECT_TRUE(Back->Lanes[1].Prune);
  EXPECT_EQ(Back->Lanes[1].Outcome, SmtResult::Sat);
  EXPECT_TRUE(Back->Lanes[1].Stats.Collected);
  EXPECT_EQ(Back->Lanes[1].Stats.Conflicts, 42u);
  EXPECT_TRUE(Back->Lanes[2].Skipped);

  // Re-emitting the parsed result reproduces the original bytes — the
  // JobIo invariant the cache and shard merger stand on.
  JsonWriter J2;
  J2.openObject();
  writeJobFields(J2, *Back, Timed);
  J2.closeObject();
  EXPECT_EQ(J2.take(), Json);

  // Lane records are run-dependent (which lane wins is a race): the
  // deterministic default format must not carry them.
  JsonWriter J3;
  J3.openObject();
  writeJobFields(J3, R, ReportOptions{});
  J3.closeObject();
  std::string Plain = J3.take();
  EXPECT_EQ(Plain.find("winning_lane"), std::string::npos);
  EXPECT_EQ(Plain.find("\"lanes\""), std::string::npos);
}

TEST(PortfolioJobIo, CanceledIsDistinctFromTimeout) {
  // "canceled" mirrors "timeout": outcome-shaped (not timing-gated),
  // emitted only when set, and round-trips exactly.
  JobResult R;
  R.Spec = laneStatsSpec();
  R.Ok = true;
  R.Outcome = SmtResult::Unknown;
  R.Canceled = true;

  JsonWriter J;
  J.openObject();
  writeJobFields(J, R, ReportOptions{});
  J.closeObject();
  std::string Json = J.take();
  EXPECT_NE(Json.find("\"canceled\": true"), std::string::npos);
  EXPECT_EQ(Json.find("\"timeout\""), std::string::npos);

  std::string Error;
  std::optional<JsonValue> Doc = parseJson(Json, &Error);
  ASSERT_TRUE(Doc) << Error;
  std::optional<JobResult> Back = jobResultFromJson(*Doc, &Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_TRUE(Back->Canceled);
  EXPECT_FALSE(Back->TimedOut);
}

//===----------------------------------------------------------------------===
// Engine integration: determinism across worker counts and vs single-lane
//===----------------------------------------------------------------------===

namespace {

/// Unsat-heavy grid (voter under causal is unsat on both seeds): no
/// witnesses or models in the report, so portfolio and single-lane
/// default bytes must be *identical*, not merely outcome-equivalent.
Campaign voterCausalCampaign() {
  Campaign C;
  C.Name = "portfolio-test";
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed})
    for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
      JobSpec J;
      J.Kind = JobKind::Predict;
      J.App = "voter";
      J.Cfg = WorkloadConfig::small(Seed);
      J.Level = IsolationLevel::Causal;
      J.Strat = S;
      J.TimeoutMs = GoldenTimeoutMs;
      C.Jobs.push_back(std::move(J));
    }
  return C;
}

Report runEngine(const Campaign &C, unsigned Workers, unsigned Lanes,
                 const std::string &LaneStatsDir = {}) {
  EngineOptions O;
  O.NumWorkers = Workers;
  O.PortfolioLanes = Lanes;
  O.LaneStatsDir = LaneStatsDir;
  return Engine(O).run(C);
}

} // namespace

TEST(PortfolioEngine, ReportBytesAreWorkerCountAndLaneInvariant) {
  Campaign C = voterCausalCampaign();
  std::string J1 = runEngine(C, 1, 4).toJson();
  std::string J4 = runEngine(C, 4, 4).toJson();
  EXPECT_EQ(J1, J4) << "portfolio report bytes depend on worker count";

  std::string Single = runEngine(C, 2, 0).toJson();
  EXPECT_EQ(Single, J1)
      << "unsat outcomes must serialize identically with and without "
         "the portfolio";
}

TEST(PortfolioEngine, RacedJobsCarryLaneRecordsAndLearnStats) {
  std::string Dir = scratchDir("engine-lanestats");
  Campaign C = voterCausalCampaign();
  Report R = runEngine(C, 2, 4, Dir);

  ASSERT_EQ(R.size(), C.size());
  for (const JobResult &Job : R.results()) {
    EXPECT_TRUE(Job.Ok);
    EXPECT_EQ(Job.Outcome, SmtResult::Unsat);
    EXPECT_FALSE(Job.Canceled) << "engine results never surface an "
                                  "interrupted lane as the job outcome";
    EXPECT_FALSE(Job.WinningLane.empty());
    ASSERT_FALSE(Job.Lanes.empty());
    EXPECT_EQ(Job.Lanes[0].Name, "reference");
    bool WinnerListed = false;
    for (const LaneResult &L : Job.Lanes)
      WinnerListed |= L.Name == Job.WinningLane;
    EXPECT_TRUE(WinnerListed);
  }

  // The race left tallies behind, keyed by query class: the next run
  // seeds its schedule from them.
  cache::LaneStatsStore Store(Dir);
  for (const JobSpec &S : C.Jobs) {
    std::vector<cache::LaneTally> T = Store.load(cache::laneStatsKey(S));
    ASSERT_FALSE(T.empty()) << cache::laneStatsKey(S);
    uint64_t Wins = 0;
    for (const cache::LaneTally &L : T) {
      EXPECT_GT(L.Runs, 0u);
      Wins += L.Wins;
    }
    // Both seeds of the class raced and decided: two wins recorded.
    EXPECT_EQ(Wins, 2u);
  }

  // A second run over the learned stats must commit the same outcomes
  // (the stagger may skip lanes, never change answers).
  Report R2 = runEngine(C, 2, 4, Dir);
  EXPECT_EQ(R2.toJson(), R.toJson());
}
