//===- traceio_test.cpp - Trace serialization tests -----------*- C++ -*-===//

#include "history/TraceIO.h"

#include "TestUtil.h"
#include "apps/AppFramework.h"
#include "store/Store.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace isopredict;

namespace {

/// writeTrace must be a fixed point of write ∘ read, and the re-read
/// history must agree structurally with the original.
void expectRoundTrip(const History &H) {
  std::string Text = writeTrace(H);
  std::string Error;
  auto H2 = readTrace(Text, &Error);
  ASSERT_TRUE(H2.has_value()) << Error << "\ntrace:\n" << Text;
  EXPECT_EQ(writeTrace(*H2), Text);
  ASSERT_EQ(H2->numTxns(), H.numTxns());
  EXPECT_EQ(H2->numSessions(), H.numSessions());
  EXPECT_EQ(H2->numKeys(), H.numKeys());
  for (TxnId T = 1; T < H.numTxns(); ++T) {
    const Transaction &A = H.txn(T), &B = H2->txn(T);
    EXPECT_EQ(A.Session, B.Session);
    EXPECT_EQ(A.Slot, B.Slot);
    ASSERT_EQ(A.Events.size(), B.Events.size());
    for (size_t I = 0; I < A.Events.size(); ++I) {
      EXPECT_EQ(A.Events[I].Kind, B.Events[I].Kind);
      EXPECT_EQ(H.keys().name(A.Events[I].Key),
                H2->keys().name(B.Events[I].Key));
      EXPECT_EQ(A.Events[I].Val, B.Events[I].Val);
      if (A.Events[I].Kind == EventKind::Read)
        EXPECT_EQ(A.Events[I].Writer, B.Events[I].Writer);
    }
  }
}

} // namespace

TEST(TraceIO, RoundTripCannedHistories) {
  expectRoundTrip(testutil::depositObserved());
  expectRoundTrip(testutil::depositUnserializable());
  expectRoundTrip(testutil::crossReadObserved());
  expectRoundTrip(testutil::bankDivergenceObserved());
  expectRoundTrip(testutil::selfJustifyTrap());
}

TEST(TraceIO, RoundTripRandomHistories) {
  Rng R(20260729);
  for (int Trial = 0; Trial < 100; ++Trial) {
    unsigned Sessions = 1 + static_cast<unsigned>(R.below(4));
    HistoryBuilder B(Sessions);
    unsigned NumTxns = static_cast<unsigned>(R.below(10));
    for (unsigned T = 1; T <= NumTxns; ++T) {
      B.beginTxn(static_cast<SessionId>(R.below(Sessions)));
      unsigned NumEvents = static_cast<unsigned>(R.below(6));
      for (unsigned E = 0; E < NumEvents; ++E) {
        std::string Key = "k" + std::to_string(R.below(4));
        if (R.chance(1, 2))
          // Any already-committed transaction (or t0) may be the writer.
          B.read(Key, static_cast<TxnId>(R.below(T)), R.range(-99, 99));
        else
          B.write(Key, R.range(-99, 99));
      }
      B.commit();
    }
    expectRoundTrip(B.finish());
  }
}

TEST(TraceIO, RoundTripStoreHistories) {
  // Histories recorded by the actual store, including weak ones.
  for (const std::string &AppName : {std::string("smallbank"),
                                     std::string("voter")}) {
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      auto App = makeApplication(AppName);
      DataStore::Options O;
      O.Mode = StoreMode::RandomWeak;
      O.Level = IsolationLevel::Causal;
      O.Seed = Seed * 17 + 1;
      DataStore Store(O);
      RunResult Run =
          WorkloadRunner::run(*App, Store, WorkloadConfig::small(Seed));
      expectRoundTrip(Run.Hist);
    }
  }
}

namespace {

/// Splits \p Text into the first \p Lines lines and the remainder.
std::pair<std::string, std::string> splitAtLine(const std::string &Text,
                                                size_t Lines) {
  size_t Off = 0;
  for (size_t I = 0; I < Lines && Off != std::string::npos; ++I)
    Off = Text.find('\n', Off) + 1;
  return {Text.substr(0, Off), Text.substr(Off)};
}

/// Reading the base part and appending the delta part must reconstruct a
/// history byte-identical (as a trace) to reading the unsplit text.
void expectSplitRoundTrip(const History &Full, size_t SplitLine) {
  std::string Text = writeTrace(Full);
  auto [BaseText, DeltaText] = splitAtLine(Text, SplitLine);
  std::string Error;
  auto Base = readTrace(BaseText, &Error);
  ASSERT_TRUE(Base.has_value()) << Error << "\nbase:\n" << BaseText;
  ASSERT_TRUE(appendTrace(*Base, DeltaText, &Error, SplitLine))
      << Error << "\ndelta:\n" << DeltaText;
  EXPECT_EQ(writeTrace(*Base), Text);
}

/// First line number (1-based) after the commit that ends transaction
/// \p Txn in writeTrace output, i.e. a valid split point.
size_t lineAfterTxn(const History &H, TxnId Txn) {
  size_t Lines = 1; // history directive
  for (TxnId T = 1; T <= Txn; ++T)
    Lines += H.txn(T).Events.size() + 2; // txn + events + commit
  return Lines;
}

} // namespace

TEST(TraceIO, SplitTraceReconstructsByteIdentical) {
  for (const History &H : {testutil::depositObserved(),
                           testutil::crossReadObserved(),
                           testutil::bankDivergenceObserved(),
                           testutil::selfJustifyTrap()}) {
    // Split after every transaction boundary, including the degenerate
    // empty-delta split at the end.
    for (TxnId T = 1; T < H.numTxns(); ++T)
      expectSplitRoundTrip(H, lineAfterTxn(H, T));
  }
}

TEST(TraceIO, SplitTraceRandomHistories) {
  Rng R(20260807);
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned Sessions = 1 + static_cast<unsigned>(R.below(4));
    HistoryBuilder B(Sessions);
    unsigned NumTxns = 2 + static_cast<unsigned>(R.below(8));
    for (unsigned T = 1; T <= NumTxns; ++T) {
      B.beginTxn(static_cast<SessionId>(R.below(Sessions)));
      unsigned NumEvents = static_cast<unsigned>(R.below(6));
      for (unsigned E = 0; E < NumEvents; ++E) {
        std::string Key = "k" + std::to_string(R.below(4));
        if (R.chance(1, 2))
          B.read(Key, static_cast<TxnId>(R.below(T)), R.range(-99, 99));
        else
          B.write(Key, R.range(-99, 99));
      }
      B.commit();
    }
    History H = B.finish();
    TxnId SplitTxn = 1 + static_cast<TxnId>(R.below(H.numTxns() - 1));
    expectSplitRoundTrip(H, lineAfterTxn(H, SplitTxn));
  }
}

TEST(TraceIO, DeltaMayOpenNewSessions) {
  auto Base = readTrace("history 1\ntxn 0\nwrite k 1\ncommit\n");
  ASSERT_TRUE(Base.has_value());
  std::string Error;
  ASSERT_TRUE(appendTrace(*Base, "txn 3\nread k 1 1\ncommit\n", &Error))
      << Error;
  EXPECT_EQ(Base->numSessions(), 4u);
  EXPECT_EQ(Base->numTxns(), 3u);
  EXPECT_EQ(Base->txn(2).Session, 3u);
}

TEST(TraceIO, DeltaErrorsCarryGlobalLineNumbers) {
  auto Base = readTrace("history 2\ntxn 0\nwrite k 1\ncommit\n");
  ASSERT_TRUE(Base.has_value());
  std::string Error;

  // Same EOF diagnostic (missing commit) as the unsplit trace would give:
  // the delta starts at global line 5, so its second line is line 6.
  History Copy = *Base;
  EXPECT_FALSE(appendTrace(Copy, "txn 1\nwrite k 2\n", &Error, 4));
  EXPECT_NE(Error.find("line 6"), std::string::npos) << Error;
  EXPECT_NE(Error.find("line 5"), std::string::npos) << Error;
  EXPECT_NE(Error.find("missing commit"), std::string::npos) << Error;

  // Writer ids may reference base transactions but not future ones.
  EXPECT_FALSE(appendTrace(Copy, "txn 1\nread k 9 0\ncommit\n", &Error, 4));
  EXPECT_NE(Error.find("line 6"), std::string::npos) << Error;
  EXPECT_NE(Error.find("bad writer id"), std::string::npos) << Error;

  // A failed append leaves the history untouched.
  EXPECT_EQ(writeTrace(Copy), writeTrace(*Base));

  // The header directive is reserved for full traces.
  EXPECT_FALSE(appendTrace(Copy, "history 2\n", &Error, 4));
  EXPECT_NE(Error.find("not allowed in a trace delta"), std::string::npos)
      << Error;
}

TEST(TraceIO, ErrorsCarryLineNumbers) {
  std::string Error;

  EXPECT_FALSE(readTrace("history 2\ntxn 0\nwrite k 1\n", &Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;

  EXPECT_FALSE(readTrace("history 1\nbogus\n", &Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;

  EXPECT_FALSE(readTrace("history 1\n# comment\n\nhistory 1\n", &Error));
  EXPECT_NE(Error.find("line 4"), std::string::npos) << Error;

  // Writer ids must reference an already-seen transaction (or t0).
  EXPECT_FALSE(readTrace("history 1\ntxn 0\nread k 5 1\ncommit\n", &Error));
  EXPECT_NE(Error.find("line 3"), std::string::npos) << Error;

  EXPECT_FALSE(readTrace("", &Error));
  EXPECT_NE(Error.find("missing history"), std::string::npos) << Error;
}
