//===- checker_test.cpp - Isolation checker tests -------------*- C++ -*-===//

#include "checker/Checkers.h"
#include "history/History.h"
#include "support/Rng.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

TEST(Checkers, DepositObservedIsSerializable) {
  History H = depositObserved();
  EXPECT_TRUE(isCausal(H));
  EXPECT_TRUE(isReadCommitted(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Serializable);
  EXPECT_EQ(bruteForceSerializable(H), std::optional<bool>(true));
  EXPECT_FALSE(pcoCycle(H).has_value());
}

TEST(Checkers, DepositDoubleInitialIsUnserializableButCausal) {
  // The paper's Figure 3a: causal and rc, but unserializable.
  History H = depositUnserializable();
  EXPECT_TRUE(isCausal(H));
  EXPECT_TRUE(isReadCommitted(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Unserializable);
  EXPECT_EQ(bruteForceSerializable(H), std::optional<bool>(false));
  // Figure 5: the pco cycle requires the rw edges; the saturator must
  // find it.
  auto Cycle = pcoCycle(H);
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_GE(Cycle->size(), 2u);
}

TEST(Checkers, CrossReadPredictionTargetIsUnserializable) {
  // Figure 8b: both reads flipped to t0.
  HistoryBuilder B(2);
  B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  B.beginTxn(1);
  B.write("y", 1);
  B.commit();
  B.beginTxn(0);
  B.read("y", InitTxn, 0);
  B.commit();
  B.beginTxn(1);
  B.read("x", InitTxn, 0);
  B.commit();
  History H = B.finish();
  EXPECT_TRUE(isCausal(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Unserializable);
  EXPECT_TRUE(pcoCycle(H).has_value());
}

TEST(Checkers, NonCausalFracturedRead) {
  // A transaction that observes the initial state of one key and then
  // t1's write to another is rc but not causal (Fig. 7d shape). Note the
  // order matters: Eq. 4 makes the opposite order (new then old) violate
  // rc as well, because wwrc(t1, t0) would contradict so(t0, t1).
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.write("x", 1);
  B.write("y", 1);
  B.commit();
  B.beginTxn(1);
  B.read("y", InitTxn, 0);
  B.read("x", T1, 1);
  B.commit();
  History H = B.finish();
  EXPECT_FALSE(isCausal(H));
  EXPECT_TRUE(isReadCommitted(H));

  // The new-then-old order violates rc too.
  HistoryBuilder B2(2);
  TxnId T1b = B2.beginTxn(0);
  B2.write("x", 1);
  B2.write("y", 1);
  B2.commit();
  B2.beginTxn(1);
  B2.read("x", T1b, 1);
  B2.read("y", InitTxn, 0);
  B2.commit();
  History H2 = B2.finish();
  EXPECT_FALSE(isCausal(H2));
  EXPECT_FALSE(isReadCommitted(H2));
}

TEST(Checkers, RcViolationReadNewThenOld) {
  // Reading t1's write and *then* the initial state of the same key in
  // one transaction violates rc (wwrc(t1, t0) contradicts so(t0, t1)).
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", T1, 1);
  B.read("x", InitTxn, 0);
  B.commit();
  History H = B.finish();
  EXPECT_FALSE(isReadCommitted(H));
  EXPECT_FALSE(isCausal(H));

  // The opposite order (old then new) is rc but still not causal and not
  // serializable.
  HistoryBuilder B2(2);
  TxnId T1b = B2.beginTxn(0);
  B2.write("x", 1);
  B2.commit();
  B2.beginTxn(1);
  B2.read("x", InitTxn, 0);
  B2.read("x", T1b, 1);
  B2.commit();
  History H2 = B2.finish();
  EXPECT_TRUE(isReadCommitted(H2));
  EXPECT_FALSE(isCausal(H2));
  EXPECT_EQ(checkSerializableSmt(H2), SerResult::Unserializable);
}

TEST(Checkers, MonotonicSessionReadsUnderCausal) {
  // A session that saw t1's write cannot later read the initial state of
  // the same key under causal (the Voter footnote-5 argument).
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", T1, 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", InitTxn, 0);
  B.commit();
  History H = B.finish();
  EXPECT_FALSE(isCausal(H));
  EXPECT_TRUE(isReadCommitted(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Unserializable);
}

TEST(Checkers, EmptyHistoryIsEverything) {
  HistoryBuilder B(1);
  History H = B.finish();
  EXPECT_TRUE(isCausal(H));
  EXPECT_TRUE(isReadCommitted(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Serializable);
}

TEST(Checkers, SerializableImpliesCausalImpliesRc) {
  // Strength ordering spot-check on the canned histories.
  for (const History &H :
       {depositObserved(), depositUnserializable(), crossReadObserved(),
        bankDivergenceObserved(), selfJustifyTrap()}) {
    if (checkSerializableSmt(H) == SerResult::Serializable) {
      EXPECT_TRUE(isCausal(H));
    }
    if (isCausal(H)) {
      EXPECT_TRUE(isReadCommitted(H));
    }
  }
}

//===----------------------------------------------------------------------===
// Property tests: random histories, cross-checked oracles
//===----------------------------------------------------------------------===

namespace {

/// Generates a random small history: K keys, S sessions, up to T txns,
/// each read picking an arbitrary earlier-committed (or initial) writer.
/// The result is a structurally well-formed history but need not satisfy
/// any isolation level — ideal for cross-checking the checkers.
History randomHistory(uint64_t Seed, unsigned Sessions, unsigned Txns,
                      unsigned NumKeys) {
  Rng R(Seed);
  HistoryBuilder B(Sessions);
  std::vector<std::vector<TxnId>> Writers(NumKeys, {InitTxn});
  std::vector<std::string> Keys;
  for (unsigned K = 0; K < NumKeys; ++K)
    Keys.push_back("k" + std::to_string(K));

  for (unsigned T = 0; T < Txns; ++T) {
    SessionId S = static_cast<SessionId>(R.below(Sessions));
    TxnId Id = B.beginTxn(S);
    unsigned Ops = static_cast<unsigned>(R.range(1, 3));
    std::vector<unsigned> Written;
    for (unsigned O = 0; O < Ops; ++O) {
      unsigned K = static_cast<unsigned>(R.below(NumKeys));
      if (R.chance(1, 2)) {
        // Read from a random committed writer of K (excluding self).
        std::vector<TxnId> Cands;
        for (TxnId W : Writers[K])
          if (W != Id)
            Cands.push_back(W);
        B.read(Keys[K], Cands[R.below(Cands.size())]);
      } else {
        B.write(Keys[K], static_cast<Value>(R.below(100)));
        Written.push_back(K);
      }
    }
    B.commit();
    for (unsigned K : Written)
      if (Writers[K].back() != Id)
        Writers[K].push_back(Id);
  }
  return B.finish();
}

class RandomHistoryTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomHistoryTest, SmtAgreesWithBruteForce) {
  History H = randomHistory(GetParam(), 2, 6, 3);
  auto Brute = bruteForceSerializable(H);
  ASSERT_TRUE(Brute.has_value());
  SerResult Smt = checkSerializableSmt(H);
  ASSERT_NE(Smt, SerResult::Unknown);
  EXPECT_EQ(*Brute, Smt == SerResult::Serializable)
      << "disagreement on seed " << GetParam();
}

TEST_P(RandomHistoryTest, PcoCycleIsSoundUnserializabilityWitness) {
  History H = randomHistory(GetParam() * 7919 + 13, 3, 7, 3);
  if (pcoCycle(H).has_value()) {
    EXPECT_EQ(checkSerializableSmt(H), SerResult::Unserializable)
        << "pco cycle on a serializable history, seed " << GetParam();
  }
}

TEST_P(RandomHistoryTest, CausalHistoriesHaveAcyclicHbPlusWw) {
  History H = randomHistory(GetParam() * 104729 + 7, 3, 8, 4);
  // Internal consistency: if serializable then causal then rc.
  if (checkSerializableSmt(H) == SerResult::Serializable) {
    EXPECT_TRUE(isCausal(H));
    EXPECT_TRUE(isReadCommitted(H));
  }
  if (isCausal(H)) {
    EXPECT_TRUE(isReadCommitted(H));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHistoryTest,
                         ::testing::Range<uint64_t>(1, 41));
