//===- bitrel_test.cpp - Dense relation algebra tests ---------*- C++ -*-===//

#include "history/BitRel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace isopredict;

TEST(BitRel, SetTestClear) {
  BitRel R(70); // Spans two 64-bit words per row.
  R.set(0, 69);
  R.set(69, 0);
  EXPECT_TRUE(R.test(0, 69));
  EXPECT_TRUE(R.test(69, 0));
  EXPECT_FALSE(R.test(0, 68));
  R.clear(0, 69);
  EXPECT_FALSE(R.test(0, 69));
  EXPECT_EQ(R.countEdges(), 1u);
}

TEST(BitRel, ClosureChain) {
  BitRel R(5);
  for (size_t I = 0; I + 1 < 5; ++I)
    R.set(I, I + 1);
  R.closeTransitively();
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = 0; J < 5; ++J)
      EXPECT_EQ(R.test(I, J), I < J) << I << "," << J;
  EXPECT_FALSE(R.hasCycleClosed());
}

TEST(BitRel, CycleDetection) {
  BitRel R(4);
  R.set(0, 1);
  R.set(1, 2);
  R.set(2, 0);
  EXPECT_TRUE(R.isCyclic());
  auto Cycle = R.findCycle();
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(Cycle->size(), 3u);
  // Each consecutive pair (and the wrap-around) must be an edge.
  for (size_t I = 0; I < Cycle->size(); ++I)
    EXPECT_TRUE(R.test((*Cycle)[I], (*Cycle)[(I + 1) % Cycle->size()]));
}

TEST(BitRel, SelfLoopIsACycle) {
  BitRel R(3);
  R.set(1, 1);
  auto Cycle = R.findCycle();
  ASSERT_TRUE(Cycle.has_value());
  EXPECT_EQ(*Cycle, std::vector<uint32_t>{1});
}

TEST(BitRel, TopoOrderRespectsEdges) {
  BitRel R(6);
  R.set(5, 0);
  R.set(0, 3);
  R.set(3, 1);
  auto Order = R.topoOrder();
  ASSERT_TRUE(Order.has_value());
  std::vector<uint32_t> Pos(6);
  for (uint32_t I = 0; I < 6; ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[5], Pos[0]);
  EXPECT_LT(Pos[0], Pos[3]);
  EXPECT_LT(Pos[3], Pos[1]);
}

TEST(BitRel, TopoOrderFailsOnCycle) {
  BitRel R(3);
  R.set(0, 1);
  R.set(1, 0);
  EXPECT_FALSE(R.topoOrder().has_value());
}

TEST(BitRel, UnionWith) {
  BitRel A(4), B(4);
  A.set(0, 1);
  B.set(2, 3);
  A.unionWith(B);
  EXPECT_TRUE(A.test(0, 1));
  EXPECT_TRUE(A.test(2, 3));
}

namespace {
class BitRelRandomTest : public ::testing::TestWithParam<uint64_t> {};

/// Reference reachability by DFS, for cross-checking Warshall.
bool reaches(const BitRel &R, size_t From, size_t To) {
  std::vector<bool> Seen(R.size(), false);
  std::vector<size_t> Stack = {From};
  while (!Stack.empty()) {
    size_t V = Stack.back();
    Stack.pop_back();
    for (size_t J = 0; J < R.size(); ++J) {
      if (!R.test(V, J) || Seen[J])
        continue;
      if (J == To)
        return true;
      Seen[J] = true;
      Stack.push_back(J);
    }
  }
  return false;
}
} // namespace

TEST_P(BitRelRandomTest, ClosureMatchesDfsReachability) {
  Rng R(GetParam());
  size_t N = 8 + R.below(8);
  BitRel Rel(N);
  size_t Edges = N + R.below(2 * N);
  for (size_t I = 0; I < Edges; ++I)
    Rel.set(R.below(N), R.below(N));

  BitRel Closed = Rel;
  Closed.closeTransitively();
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      EXPECT_EQ(Closed.test(I, J), reaches(Rel, I, J))
          << I << "->" << J << " seed " << GetParam();
}

TEST_P(BitRelRandomTest, FindCycleAgreesWithIsCyclic) {
  Rng R(GetParam() * 31 + 1);
  size_t N = 6 + R.below(10);
  BitRel Rel(N);
  for (size_t I = 0; I < N + R.below(N); ++I)
    Rel.set(R.below(N), R.below(N));
  auto Cycle = Rel.findCycle();
  EXPECT_EQ(Cycle.has_value(), Rel.isCyclic());
  if (Cycle) {
    for (size_t I = 0; I < Cycle->size(); ++I)
      EXPECT_TRUE(
          Rel.test((*Cycle)[I], (*Cycle)[(I + 1) % Cycle->size()]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitRelRandomTest,
                         ::testing::Range<uint64_t>(1, 26));
