//===- support_test.cpp - Support library tests ---------------*- C++ -*-===//

#include "support/Env.h"
#include "support/Fs.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cstdlib>
#include <gtest/gtest.h>
#include <unistd.h>

using namespace isopredict;

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 16; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, SplitIndependent) {
  Rng Master(5);
  Rng C1 = Master.split(1);
  Rng C2 = Master.split(2);
  EXPECT_NE(C1.next(), C2.next());
  // Splitting is a pure function of (state, salt).
  Rng C1b = Master.split(1);
  Rng C1c = Master.split(1);
  EXPECT_EQ(C1b.next(), C1c.next());
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 5));
  }
}

TEST(StrUtil, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StrUtil, ParseInt) {
  EXPECT_EQ(parseInt("42"), std::optional<int64_t>(42));
  EXPECT_EQ(parseInt("-7"), std::optional<int64_t>(-7));
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("12x").has_value());
  EXPECT_FALSE(parseInt("x12").has_value());
  EXPECT_FALSE(parseInt("999999999999999999999999").has_value());
}

TEST(StrUtil, StartsWith) {
  EXPECT_TRUE(startsWith("history 3", "history"));
  EXPECT_FALSE(startsWith("his", "history"));
}

TEST(StrUtil, Format) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Env, DefaultsAndOverrides) {
  unsetenv("ISOPREDICT_TEST_ENVVAR");
  EXPECT_EQ(envInt("ISOPREDICT_TEST_ENVVAR", 5), 5);
  setenv("ISOPREDICT_TEST_ENVVAR", "12", 1);
  EXPECT_EQ(envInt("ISOPREDICT_TEST_ENVVAR", 5), 12);
  setenv("ISOPREDICT_TEST_ENVVAR", "garbage", 1);
  EXPECT_EQ(envInt("ISOPREDICT_TEST_ENVVAR", 5), 5);
  EXPECT_EQ(envString("ISOPREDICT_TEST_ENVVAR", "d"), "garbage");
  unsetenv("ISOPREDICT_TEST_ENVVAR");
}

TEST(Env, TimerAdvances) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("x\ny\t"), "x\\ny\\t");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ParsesDocumentsAndPreservesNumberSpellings) {
  std::string Error;
  std::optional<JsonValue> Doc = parseJson(
      "{\"a\": [1, 2.50, -3], \"b\": {\"c\": true, \"d\": null}, "
      "\"e\": \"x\\ny\"}",
      &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const JsonValue *A = Doc->field("a");
  ASSERT_TRUE(A && A->K == JsonValue::Kind::Array);
  ASSERT_EQ(A->Items.size(), 3u);
  EXPECT_EQ(A->Items[1].Text, "2.50"); // source spelling kept
  const JsonValue *B = Doc->field("b");
  ASSERT_TRUE(B && B->K == JsonValue::Kind::Object);
  EXPECT_EQ(B->field("c")->scalar(), "true");
  EXPECT_EQ(B->field("d")->scalar(), "null");
  EXPECT_EQ(Doc->field("e")->Text, "x\ny");
}

TEST(Json, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseJson("{\"a\": }", &Error).has_value());
  EXPECT_NE(Error.find("offset"), std::string::npos);
  EXPECT_FALSE(parseJson("[1, 2,]", nullptr).has_value());
  EXPECT_FALSE(parseJson("{} trailing", nullptr).has_value());
  EXPECT_FALSE(parseJson("", nullptr).has_value());
}

TEST(Json, WriterRoundTripsThroughParser) {
  JsonWriter W;
  W.openObject();
  W.str("name", "a \"quoted\" value");
  W.num("count", static_cast<uint64_t>(7));
  W.num("ratio", 0.5);
  W.boolean("flag", true);
  W.openArray("items");
  W.numElement(1);
  W.strElement("two");
  W.closeArray();
  W.closeObject();
  std::string Out = W.take();

  std::optional<JsonValue> Doc = parseJson(Out);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->field("name")->Text, "a \"quoted\" value");
  EXPECT_EQ(Doc->field("count")->Text, "7");
  EXPECT_EQ(Doc->field("ratio")->Text, "0.500000"); // fixed %.6f render
  EXPECT_TRUE(Doc->field("flag")->B);
  ASSERT_EQ(Doc->field("items")->Items.size(), 2u);
}

TEST(Json, DepthLimitRejectsDeepNesting) {
  JsonParseLimits Limits;
  Limits.MaxDepth = 4;
  std::string Error;
  EXPECT_TRUE(parseJson("[[[[1]]]]", Limits, &Error).has_value());
  EXPECT_FALSE(parseJson("[[[[[1]]]]]", Limits, &Error).has_value());
  EXPECT_NE(Error.find("depth"), std::string::npos) << Error;
  Error.clear();
  // Four levels of objects sit exactly at the limit; a fifth exceeds it.
  EXPECT_TRUE(parseJson(R"({"a": {"b": {"c": {"d": 1}}}})", Limits, &Error)
                  .has_value());
  EXPECT_FALSE(
      parseJson(R"({"a": {"b": {"c": {"d": {"e": 1}}}}})", Limits, &Error)
          .has_value());
  EXPECT_NE(Error.find("depth"), std::string::npos) << Error;
}

TEST(Json, DepthLimitDefaultAcceptsOrdinaryDocuments) {
  // 100 levels sits under the default limit of 128.
  std::string Doc(100, '[');
  Doc += "1";
  Doc.append(100, ']');
  EXPECT_TRUE(parseJson(Doc, nullptr).has_value());
  // 200 levels does not.
  std::string Deep(200, '[');
  Deep += "1";
  Deep.append(200, ']');
  std::string Error;
  EXPECT_FALSE(parseJson(Deep, &Error).has_value());
  EXPECT_NE(Error.find("depth"), std::string::npos) << Error;
}

TEST(Json, SizeLimitRejectsOversizedDocuments) {
  JsonParseLimits Limits;
  Limits.MaxBytes = 16;
  std::string Error;
  EXPECT_TRUE(parseJson(R"({"a": 1})", Limits, &Error).has_value());
  EXPECT_FALSE(
      parseJson(R"({"a": "0123456789abcdef"})", Limits, &Error).has_value());
  EXPECT_NE(Error.find("bytes"), std::string::npos) << Error;
  // Zero means unlimited.
  Limits.MaxBytes = 0;
  EXPECT_TRUE(
      parseJson(R"({"a": "0123456789abcdef"})", Limits, &Error).has_value());
}

TEST(Json, CompactWriterEmitsOneLine) {
  JsonWriter J(JsonWriter::Style::Compact);
  J.openObject();
  J.str("name", "x");
  J.num("n", static_cast<uint64_t>(3));
  J.openArray("items");
  J.numElement(1);
  J.numElement(2);
  J.closeArray();
  J.closeObject();
  std::string Out = J.take();
  // One newline only: the trailing frame terminator.
  EXPECT_EQ(Out.back(), '\n');
  EXPECT_EQ(Out.find('\n'), Out.size() - 1);
  // Still valid JSON with the same content as the pretty form.
  std::optional<JsonValue> V = parseJson(Out, nullptr);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->field("name")->Text, "x");
  EXPECT_EQ(V->field("items")->Items.size(), 2u);
}

TEST(Fs, ReadWriteRoundTrip) {
  std::string Dir = testing::TempDir() + formatString("isopredict-fs-%ld",
                                                      (long)::getpid());
  ASSERT_TRUE(createDirectories(pathJoin(Dir, "a/b/c")));
  EXPECT_TRUE(pathExists(pathJoin(Dir, "a/b/c")));
  // Idempotent on existing directories.
  EXPECT_TRUE(createDirectories(pathJoin(Dir, "a/b")));

  std::string Path = pathJoin(Dir, "a/b/c/file.json");
  std::string Contents("line1\nline2\0binary", 18), Back;
  ASSERT_TRUE(writeFileAtomic(Path, Contents));
  ASSERT_TRUE(readFile(Path, Back));
  EXPECT_EQ(Back, Contents);

  // Atomic overwrite replaces the old bytes completely.
  ASSERT_TRUE(writeFileAtomic(Path, "v2"));
  ASSERT_TRUE(readFile(Path, Back));
  EXPECT_EQ(Back, "v2");

  std::string Error;
  EXPECT_FALSE(readFile(pathJoin(Dir, "missing"), Back, &Error));
  EXPECT_NE(Error.find("missing"), std::string::npos);
  // Writes into a non-existent directory fail cleanly.
  EXPECT_FALSE(writeFileAtomic(pathJoin(Dir, "no/such/dir/f"), "x", &Error));
}

TEST(Fs, PathJoin) {
  EXPECT_EQ(pathJoin("a", "b"), "a/b");
  EXPECT_EQ(pathJoin("a/", "b"), "a/b");
  EXPECT_EQ(pathJoin("", "b"), "b");
}

TEST(TablePrinter, AlignsAndSeparates) {
  TablePrinter T;
  T.setHeader({"Name", "Value"});
  T.addRow({"longer-name", "1"});
  T.addSeparator();
  T.addRow({"x", "22"});

  char Buf[512] = {0};
  FILE *Mem = fmemopen(Buf, sizeof(Buf) - 1, "w");
  ASSERT_NE(Mem, nullptr);
  T.print(Mem);
  std::fclose(Mem);
  std::string Out(Buf);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
  // Right-aligned second column: "22" should appear after padding.
  EXPECT_NE(Out.find(" 22"), std::string::npos);
}
