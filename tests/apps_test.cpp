//===- apps_test.cpp - Benchmark application tests ------------*- C++ -*-===//

#include "apps/AppFramework.h"

#include "checker/Checkers.h"
#include "history/TraceIO.h"
#include <gtest/gtest.h>

using namespace isopredict;

namespace {

DataStore makeStore(StoreMode Mode, IsolationLevel Level, uint64_t Seed) {
  DataStore::Options O;
  O.Mode = Mode;
  O.Level = Level;
  O.Seed = Seed;
  return DataStore(O);
}

struct AppCase {
  const char *Name;
  uint64_t Seed;
};

class AppSerialTest
    : public ::testing::TestWithParam<std::tuple<const char *, uint64_t>> {};

} // namespace

TEST_P(AppSerialTest, SerialRunsAreSerializableAndAssertionClean) {
  auto [Name, Seed] = GetParam();
  auto App = makeApplication(Name);
  ASSERT_NE(App, nullptr);
  WorkloadConfig Cfg = WorkloadConfig::small(Seed);
  DataStore Store = makeStore(StoreMode::SerialObserved,
                              IsolationLevel::Serializable, Seed);
  RunResult R = WorkloadRunner::run(*App, Store, Cfg);

  // Observed executions are serializable, so no in-app assertion may
  // fire (assertions hold in every serializable execution by design).
  EXPECT_TRUE(R.FailedAssertions.empty())
      << Name << " seed " << Seed << ": " << R.FailedAssertions.front();
  EXPECT_EQ(checkSerializableSmt(R.Hist, 30000), SerResult::Serializable);
  EXPECT_TRUE(isCausal(R.Hist));

  // Structure sanity: committed + aborted accounts for every slot.
  size_t Committed = R.Hist.numTxns() - 1;
  EXPECT_EQ(Committed + R.AbortedTxns,
            static_cast<size_t>(Cfg.Sessions) * Cfg.TxnsPerSession);
}

TEST_P(AppSerialTest, RunsAreDeterministic) {
  auto [Name, Seed] = GetParam();
  auto App = makeApplication(Name);
  WorkloadConfig Cfg = WorkloadConfig::small(Seed);

  DataStore S1 = makeStore(StoreMode::SerialObserved,
                           IsolationLevel::Serializable, Seed);
  DataStore S2 = makeStore(StoreMode::SerialObserved,
                           IsolationLevel::Serializable, Seed);
  auto App2 = makeApplication(Name);
  RunResult R1 = WorkloadRunner::run(*App, S1, Cfg);
  RunResult R2 = WorkloadRunner::run(*App2, S2, Cfg);
  EXPECT_EQ(writeTrace(R1.Hist), writeTrace(R2.Hist));
}

TEST_P(AppSerialTest, WeakRunsRespectTheirIsolationLevel) {
  auto [Name, Seed] = GetParam();
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadCommitted}) {
    auto App = makeApplication(Name);
    WorkloadConfig Cfg = WorkloadConfig::small(Seed);
    DataStore Store = makeStore(StoreMode::RandomWeak, L, Seed * 31 + 5);
    RunResult R = WorkloadRunner::run(*App, Store, Cfg);
    EXPECT_TRUE(satisfiesLevel(R.Hist, L))
        << Name << " seed " << Seed << " level " << toString(L);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppSerialTest,
    ::testing::Combine(::testing::Values("smallbank", "voter", "tpcc",
                                         "wikipedia"),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)));

TEST(Apps, FactoryKnowsAllNames) {
  for (const std::string &Name : applicationNames())
    EXPECT_NE(makeApplication(Name), nullptr) << Name;
  EXPECT_EQ(makeApplication("nope"), nullptr);
}

TEST(Apps, VoterHasSingleWritingTransaction) {
  // The property behind the paper's Voter result (footnote 5): a
  // serializable observed execution has exactly one writing transaction.
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto App = makeApplication("voter");
    WorkloadConfig Cfg = WorkloadConfig::large(Seed);
    DataStore Store = makeStore(StoreMode::SerialObserved,
                                IsolationLevel::Serializable, Seed);
    RunResult R = WorkloadRunner::run(*App, Store, Cfg);
    unsigned Writers = 0;
    for (TxnId T = 1; T < R.Hist.numTxns(); ++T) {
      for (const Event &E : R.Hist.txn(T).Events)
        if (E.Kind == EventKind::Write) {
          ++Writers;
          break;
        }
    }
    EXPECT_EQ(Writers, 1u) << "seed " << Seed;
    EXPECT_EQ(R.AbortedTxns, 0u) << "voter never aborts";
  }
}

TEST(Apps, WeakVoterCanAcceptDoubleVotes) {
  // Under causal random reads, MonkeyDB-style exploration finds runs
  // where two vote transactions both read a zero count (Table 6's Fail
  // column for Voter).
  unsigned Fails = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    auto App = makeApplication("voter");
    WorkloadConfig Cfg = WorkloadConfig::small(Seed);
    DataStore Store =
        makeStore(StoreMode::RandomWeak, IsolationLevel::Causal, Seed);
    RunResult R = WorkloadRunner::run(*App, Store, Cfg);
    Fails += R.assertionFailed();
  }
  EXPECT_GT(Fails, 0u) << "random weak exploration should trip the voter "
                          "assertion at least once in 30 runs";
}

TEST(Apps, LockingRcKeepsSmallbankConsistentButBreaksTpcc) {
  // The MySQL-substitute behaviour (Table 7): with write locks held to
  // commit, Smallbank/Voter/Wikipedia assertions hold because their
  // read-modify-writes use getForUpdate, while TPC-C's plain-get
  // SELECT-then-UPDATE on d_next_o_id still races.
  unsigned TpccFails = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    for (const char *Name : {"smallbank", "voter", "wikipedia"}) {
      auto App = makeApplication(Name);
      WorkloadConfig Cfg = WorkloadConfig::small(Seed);
      DataStore Store = makeStore(StoreMode::LockingRc,
                                  IsolationLevel::ReadCommitted, Seed);
      RunResult R = WorkloadRunner::run(*App, Store, Cfg);
      EXPECT_TRUE(R.FailedAssertions.empty())
          << Name << " seed " << Seed << ": " << R.FailedAssertions.front();
    }
    auto App = makeApplication("tpcc");
    WorkloadConfig Cfg = WorkloadConfig::large(Seed);
    DataStore Store = makeStore(StoreMode::LockingRc,
                                IsolationLevel::ReadCommitted, Seed);
    RunResult R = WorkloadRunner::run(*App, Store, Cfg);
    TpccFails += R.assertionFailed();
  }
  EXPECT_GT(TpccFails, 0u)
      << "TPC-C's unlocked order-id read should race under locking rc";
}

TEST(Apps, ReplayExecutesRequestedSlotsOnly) {
  auto App = makeApplication("smallbank");
  WorkloadConfig Cfg = WorkloadConfig::small(3);
  DataStore Store = makeStore(StoreMode::SerialObserved,
                              IsolationLevel::Serializable, 3);
  RunResult R = WorkloadRunner::replay(*App, Store, Cfg,
                                       {{0, 0}, {1, 0}, {0, 1}});
  size_t Committed = R.Hist.numTxns() - 1;
  EXPECT_EQ(Committed + R.AbortedTxns, 3u);
}
