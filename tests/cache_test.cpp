//===- cache_test.cpp - Result cache, sharding, and merge tests -*- C++ -*-===//

#include "cache/Merge.h"
#include "cache/ResultStore.h"
#include "cache/Shard.h"
#include "engine/Engine.h"
#include "engine/JobIo.h"
#include "support/Fs.h"
#include "support/Json.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace isopredict;
using namespace isopredict::engine;
using namespace isopredict::cache;

namespace {

/// Fresh per-test scratch directory under gtest's temp root.
std::string scratchDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string Dir =
      pathJoin(testing::TempDir(),
               formatString("isopredict-%s-%ld-%u", Tag,
                            static_cast<long>(::getpid()),
                            Counter.fetch_add(1)));
  EXPECT_TRUE(createDirectories(Dir));
  return Dir;
}

/// A fast mixed campaign: every job kind, decided well within timeout.
Campaign mixedCampaign() {
  Campaign C;
  C.Name = "cache-test";
  for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
    JobSpec J;
    J.Kind = JobKind::Observe;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(Seed);
    C.Jobs.push_back(std::move(J));
  }
  for (Strategy S : {Strategy::ApproxStrict, Strategy::ApproxRelaxed}) {
    JobSpec J;
    J.Kind = JobKind::Predict;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(2);
    J.Level = IsolationLevel::Causal;
    J.Strat = S;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  {
    JobSpec J;
    J.Kind = JobKind::RandomWeak;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(1);
    J.Level = IsolationLevel::Causal;
    J.StoreSeed = 1007;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  {
    JobSpec J;
    J.Kind = JobKind::LockingRc;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(1);
    J.StoreSeed = 99;
    C.Jobs.push_back(std::move(J));
  }
  return C;
}

Report run(const Campaign &C, const std::string &CacheDir = {},
           bool ShareEncodings = false, unsigned Workers = 2) {
  EngineOptions O;
  O.NumWorkers = Workers;
  O.CacheDir = CacheDir;
  O.ShareEncodings = ShareEncodings;
  return Engine(O).run(C);
}

} // namespace

//===----------------------------------------------------------------------===
// JobIo round-trip
//===----------------------------------------------------------------------===

TEST(JobIo, ReportRoundTripsThroughJsonByteIdentically) {
  // Parse every job of a real report and re-emit the report from the
  // parsed results: the merger's correctness reduces to this property.
  Campaign C = mixedCampaign();
  Report Original = run(C);
  std::string Json = Original.toJson();

  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Jobs = Doc->field("jobs");
  ASSERT_TRUE(Jobs && Jobs->K == JsonValue::Kind::Array);

  std::vector<JobResult> Parsed;
  for (const JsonValue &Job : Jobs->Items) {
    std::string Error;
    std::optional<JobResult> R = jobResultFromJson(Job, &Error);
    ASSERT_TRUE(R.has_value()) << Error;
    EXPECT_EQ(canonicalSpec(R->Spec),
              canonicalSpec(C.Jobs[Parsed.size()]));
    Parsed.push_back(std::move(*R));
  }
  Report Rebuilt(Original.campaignName(), std::move(Parsed), 0, 0);
  EXPECT_EQ(Rebuilt.toJson(), Json);
}

TEST(JobIo, FailedJobRoundTrips) {
  JobResult R;
  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "no-such-app";
  R.Spec = S;
  R.Error = "unknown application 'no-such-app'";

  JsonWriter J;
  J.openObject();
  writeJobFields(J, R, ReportOptions{});
  J.closeObject();
  std::string Json = J.take();

  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value());
  std::optional<JobResult> Back = jobResultFromJson(*Doc);
  ASSERT_TRUE(Back.has_value());
  EXPECT_FALSE(Back->Ok);
  EXPECT_EQ(Back->Error, R.Error);
  EXPECT_EQ(specHash(Back->Spec), specHash(S));
}

TEST(JobIo, SpecHashMismatchIsRejected) {
  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(1);
  JsonWriter J;
  J.openObject();
  writeJobSpecFields(J, S);
  J.closeObject();
  std::string Json = J.take();
  // Doctor one spec field without updating the recorded hash.
  size_t Pos = Json.find("\"seed\": 1");
  ASSERT_NE(Pos, std::string::npos);
  Json.replace(Pos, 9, "\"seed\": 2");

  std::optional<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.has_value());
  std::string Error;
  EXPECT_FALSE(jobSpecFromJson(*Doc, &Error).has_value());
  EXPECT_NE(Error.find("spec_hash"), std::string::npos);
}

//===----------------------------------------------------------------------===
// ResultStore semantics
//===----------------------------------------------------------------------===

TEST(ResultStore, MissThenHit) {
  std::string Dir = scratchDir("store");
  ResultStore Store(Dir);

  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(3);
  EXPECT_FALSE(Store.lookup(S).has_value()); // cold

  JobResult R = Engine::runJob(S);
  ASSERT_TRUE(R.Ok);
  ASSERT_TRUE(cacheable(R));
  std::string Error;
  ASSERT_TRUE(Store.store(R, EncodingMode::OneShot, 0, &Error)) << Error;
  EXPECT_TRUE(pathExists(Store.entryPath(S)));

  std::optional<JobResult> Hit = Store.lookup(S);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(Hit->CacheHit);
  EXPECT_EQ(Hit->CommittedTxns, R.CommittedTxns);
  EXPECT_EQ(Hit->Reads, R.Reads);
  EXPECT_EQ(canonicalSpec(Hit->Spec), canonicalSpec(S));

  // A different spec (same app, different seed) is still a miss.
  JobSpec Other = S;
  Other.Cfg.Seed = 4;
  EXPECT_FALSE(Store.lookup(Other).has_value());
}

TEST(ResultStore, CorruptEntryIsAMiss) {
  std::string Dir = scratchDir("corrupt");
  ResultStore Store(Dir);
  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(1);
  JobResult R = Engine::runJob(S);
  ASSERT_TRUE(Store.store(R));

  // Truncated JSON.
  std::string Raw;
  ASSERT_TRUE(readFile(Store.entryPath(S), Raw));
  ASSERT_TRUE(writeFileAtomic(Store.entryPath(S),
                              Raw.substr(0, Raw.size() / 2)));
  EXPECT_FALSE(Store.lookup(S).has_value());

  // Valid JSON, wrong canonical spec (a hash collision in effect).
  std::string Doctored = Raw;
  size_t Pos = Doctored.find("app=voter");
  ASSERT_NE(Pos, std::string::npos);
  Doctored.replace(Pos, 9, "app=tpccc");
  ASSERT_TRUE(writeFileAtomic(Store.entryPath(S), Doctored));
  EXPECT_FALSE(Store.lookup(S).has_value());

  // Restore the pristine entry: hit again (overwrite semantics work).
  ASSERT_TRUE(writeFileAtomic(Store.entryPath(S), Raw));
  EXPECT_TRUE(Store.lookup(S).has_value());
}

TEST(ResultStore, VersionMismatchIsAMiss) {
  std::string Dir = scratchDir("version");
  ResultStore Store(Dir);
  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "smallbank";
  S.Cfg = WorkloadConfig::small(1);
  ASSERT_TRUE(Store.store(Engine::runJob(S)));

  // An entry whose embedded stamp disagrees with the current tool
  // version must be ignored even if it sits in the right directory
  // (e.g. copied across cache roots).
  std::string Raw;
  ASSERT_TRUE(readFile(Store.entryPath(S), Raw));
  std::string Stamp = "\"tool_version\": \"" + std::string(toolVersion()) +
                      "\"";
  size_t Pos = Raw.find(Stamp);
  ASSERT_NE(Pos, std::string::npos);
  std::string Old = Raw;
  Old.replace(Pos, Stamp.size(), "\"tool_version\": \"isopredict-0\"");
  ASSERT_TRUE(writeFileAtomic(Store.entryPath(S), Old));
  EXPECT_FALSE(Store.lookup(S).has_value());
}

TEST(ResultStore, ConcurrentWritersAndReadersNeverSeeTornEntries) {
  // Two writer threads hammer the same spec_hash while two readers
  // loop lookups: atomic tmp+rename writes mean every lookup is either
  // a miss or a fully valid entry — never a torn read. This is the
  // same contract two processes sharing --cache-dir rely on (the CI
  // server gate runs that variant).
  std::string Dir = scratchDir("race");
  ResultStore Store(Dir);

  JobSpec S;
  S.Kind = JobKind::Observe;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(5);
  JobResult R = Engine::runJob(S);
  ASSERT_TRUE(R.Ok);

  std::atomic<bool> Go{false}, Done{false};
  std::atomic<unsigned> Hits{0}, Misses{0}, Torn{0};
  std::vector<std::thread> Threads;
  for (int W = 0; W < 2; ++W)
    Threads.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      for (int I = 0; I < 50; ++I)
        EXPECT_TRUE(Store.store(R));
    });
  for (int Rd = 0; Rd < 2; ++Rd)
    Threads.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      while (!Done.load()) {
        std::optional<JobResult> Hit = Store.lookup(S);
        if (!Hit) {
          ++Misses;
          continue;
        }
        ++Hits;
        // A torn entry would fail the store's spec verification and
        // surface as a miss; a hit must carry the full result.
        if (Hit->CommittedTxns != R.CommittedTxns || Hit->Reads != R.Reads ||
            canonicalSpec(Hit->Spec) != canonicalSpec(S))
          ++Torn;
      }
    });
  Go.store(true);
  Threads[0].join();
  Threads[1].join();
  Done.store(true);
  Threads[2].join();
  Threads[3].join();

  EXPECT_EQ(Torn.load(), 0u);
  EXPECT_GT(Hits.load(), 0u);
  // The final state is a pristine entry.
  std::optional<JobResult> Final = Store.lookup(S);
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(canonicalSpec(Final->Spec), canonicalSpec(S));
}

TEST(ResultStore, ConcurrentDistinctSpecsAllLand) {
  // Four threads store four different specs into one root concurrently;
  // every entry must be independently retrievable afterwards.
  std::string Dir = scratchDir("race-distinct");
  ResultStore Store(Dir);

  std::vector<JobSpec> Specs;
  std::vector<JobResult> Results;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    JobSpec S;
    S.Kind = JobKind::Observe;
    S.App = Seed % 2 ? "voter" : "smallbank";
    S.Cfg = WorkloadConfig::small(Seed);
    Results.push_back(Engine::runJob(S));
    ASSERT_TRUE(Results.back().Ok);
    Specs.push_back(std::move(S));
  }

  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Specs.size(); ++I)
    Threads.emplace_back([&, I] {
      for (int K = 0; K < 20; ++K) {
        EXPECT_TRUE(Store.store(Results[I]));
        std::optional<JobResult> Hit = Store.lookup(Specs[I]);
        EXPECT_TRUE(Hit.has_value());
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (size_t I = 0; I < Specs.size(); ++I) {
    std::optional<JobResult> Hit = Store.lookup(Specs[I]);
    ASSERT_TRUE(Hit.has_value()) << Specs[I].App;
    EXPECT_EQ(canonicalSpec(Hit->Spec), canonicalSpec(Specs[I]));
  }
}

TEST(ResultStore, CacheablePolicyRejectsTimeoutShapedResults) {
  JobResult R;
  R.Spec.Kind = JobKind::Predict;
  R.Ok = false;
  EXPECT_FALSE(cacheable(R)); // failed jobs never cache

  R.Ok = true;
  R.Outcome = SmtResult::Unknown;
  EXPECT_FALSE(cacheable(R)); // solver timeout

  R.Outcome = SmtResult::Unsat;
  EXPECT_TRUE(cacheable(R));

  R.Outcome = SmtResult::Sat;
  R.Spec.Validate = true;
  R.ValStatus = ValidationResult::Status::Unknown;
  EXPECT_FALSE(cacheable(R)); // validation check timeout
  R.ValStatus = ValidationResult::Status::ValidatedUnserializable;
  EXPECT_TRUE(cacheable(R));

  JobResult W;
  W.Spec.Kind = JobKind::RandomWeak;
  W.Ok = true;
  W.Spec.CheckSerializability = true;
  W.Serializability = SerResult::Unknown;
  EXPECT_FALSE(cacheable(W)); // serializability check timeout
  W.Serializability = SerResult::Unserializable;
  EXPECT_TRUE(cacheable(W));
}

//===----------------------------------------------------------------------===
// Engine integration
//===----------------------------------------------------------------------===

TEST(EngineCache, WarmRunIsByteIdenticalWithAllHits) {
  Campaign C = mixedCampaign();
  std::string Dir = scratchDir("warm");

  Report Cold = run(C, Dir);
  EXPECT_EQ(Cold.cacheHits(), 0u);
  EXPECT_EQ(Cold.cacheMisses(), C.size());

  Report Warm = run(C, Dir);
  EXPECT_EQ(Warm.cacheHits(), C.size());
  EXPECT_EQ(Warm.cacheMisses(), 0u);
  for (const JobResult &R : Warm.results())
    EXPECT_TRUE(R.CacheHit);

  // Default reports: byte-identical cold, warm, and cache-less.
  EXPECT_EQ(Cold.toJson(), Warm.toJson());
  EXPECT_EQ(run(C).toJson(), Warm.toJson());
}

TEST(EngineCache, PartialInvalidationRecomputesOnlyTheMissingJob) {
  Campaign C = mixedCampaign();
  std::string Dir = scratchDir("partial");
  Report Cold = run(C, Dir);

  // Drop one entry; the re-run must recompute exactly that job.
  ResultStore Store(Dir);
  ASSERT_EQ(std::remove(Store.entryPath(C.Jobs[3]).c_str()), 0);
  Report Rerun = run(C, Dir);
  EXPECT_EQ(Rerun.cacheHits(), C.size() - 1);
  EXPECT_EQ(Rerun.cacheMisses(), 1u);
  EXPECT_FALSE(Rerun.results()[3].CacheHit);
  EXPECT_EQ(Cold.toJson(), Rerun.toJson());
  // And the recomputed result was stored back: third run is all hits.
  EXPECT_EQ(run(C, Dir).cacheHits(), C.size());
}

TEST(EngineCache, SharedEncodingsConsultTheCacheToo) {
  // All-Predict campaign on one observed execution: warm shared-mode
  // runs must answer from the cache without building any session.
  Campaign C = Campaign::predictGrid(
      "shared-cache", {"smallbank"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 1, 60000);
  std::string Dir = scratchDir("shared");

  Report Cold = run(C, Dir, /*ShareEncodings=*/true);
  EXPECT_EQ(Cold.cacheMisses(), C.size());
  Report Warm = run(C, Dir, /*ShareEncodings=*/true);
  EXPECT_EQ(Warm.cacheHits(), C.size());
  EXPECT_EQ(Cold.toJson(), Warm.toJson());
}

TEST(EngineCache, SharedEncodingsPartialHitRecomputesTheWholeGroup) {
  // Literal attribution inside a shared group depends on which member
  // paid the base prefix (base_prefix_reused / literals are default-
  // report bytes), so a partially-cached group must fall back to a
  // full recompute — every member a miss — rather than consume the
  // surviving entries and shift the attribution.
  Campaign C = Campaign::predictGrid(
      "shared-partial", {"smallbank"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 1, 60000);
  std::string Dir = scratchDir("shared-partial");

  Report Cold = run(C, Dir, /*ShareEncodings=*/true);
  ResultStore Store(Dir);
  // Invalidate a *later* group member: the base payer's entry survives,
  // which is exactly the skew-prone constellation.
  ASSERT_EQ(std::remove(Store.entryPath(C.Jobs[2], EncodingMode::Session)
                            .c_str()),
            0);

  Report Rerun = run(C, Dir, /*ShareEncodings=*/true);
  EXPECT_EQ(Rerun.cacheHits(), 0u);
  EXPECT_EQ(Rerun.cacheMisses(), C.size()); // all-or-nothing
  EXPECT_EQ(Cold.toJson(), Rerun.toJson());
  // The recompute restored the dropped entry: next run hits wholesale.
  EXPECT_EQ(run(C, Dir, /*ShareEncodings=*/true).cacheHits(), C.size());
}

TEST(EngineCache, ModesDoNotCrossContaminate) {
  // Session-encoded results carry shared-mode literal attribution
  // (base_prefix_reused, per-query counts) in default-report bytes; a
  // one-shot run must never answer from them (and vice versa). The two
  // modes cache side by side under distinct entry paths.
  Campaign C = Campaign::predictGrid(
      "modes", {"smallbank"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 1, 60000);
  std::string Dir = scratchDir("modes");

  Report SharedCold = run(C, Dir, /*ShareEncodings=*/true);
  EXPECT_EQ(SharedCold.cacheMisses(), C.size());

  // One-shot warm attempt against a session-filled cache: all misses,
  // and the report matches a cache-off one-shot run byte for byte.
  Report OneShot = run(C, Dir, /*ShareEncodings=*/false);
  EXPECT_EQ(OneShot.cacheHits(), 0u);
  EXPECT_EQ(OneShot.toJson(), run(C).toJson());

  // Both modes are now warm, each from its own entries.
  EXPECT_EQ(run(C, Dir, /*ShareEncodings=*/true).cacheHits(), C.size());
  EXPECT_EQ(run(C, Dir, /*ShareEncodings=*/false).cacheHits(), C.size());
}

TEST(EngineCache, SessionEntriesAreScopedToTheirShareGroup) {
  // Session-mode stats depend on the whole group constellation (which
  // member pays the base prefix), so entries written by differently-
  // composed campaigns must not answer: fill the cache from two
  // single-strategy shared runs, then run the combined campaign — all
  // misses, and bytes equal to a cache-off shared run of exactly this
  // campaign (a cross-campaign warm hit would splice in the wrong
  // literal attribution).
  std::string Dir = scratchDir("groupscope");
  auto grid = [&](std::vector<Strategy> Strats) {
    return Campaign::predictGrid("groups", {"smallbank"},
                                 {IsolationLevel::Causal},
                                 std::move(Strats), {false}, 1, 60000);
  };
  run(grid({Strategy::ApproxStrict}), Dir, /*ShareEncodings=*/true);
  run(grid({Strategy::ApproxRelaxed}), Dir, /*ShareEncodings=*/true);

  Campaign Combined =
      grid({Strategy::ApproxStrict, Strategy::ApproxRelaxed});
  Report Warm = run(Combined, Dir, /*ShareEncodings=*/true);
  EXPECT_EQ(Warm.cacheHits(), 0u);
  EXPECT_EQ(Warm.toJson(),
            run(Combined, {}, /*ShareEncodings=*/true).toJson());
  // The combined run stored entries for *its* constellation: now warm.
  EXPECT_EQ(run(Combined, Dir, /*ShareEncodings=*/true).cacheHits(),
            Combined.size());
}

TEST(EngineCache, PrunedAndUnprunedEntriesNeverCrossAnswer) {
  // JobSpec::Prune rides in canonicalSpec (and therefore in the spec
  // hash): pruned and unpruned runs of the same grid file under
  // different identities, so neither answers the other's lookups —
  // their default-report bytes (literal counts, possibly models)
  // legitimately differ.
  Campaign Plain = Campaign::predictGrid(
      "prune-x", {"smallbank"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 1, 60000);
  Campaign Pruned = Plain;
  for (JobSpec &J : Pruned.Jobs)
    J.Prune = true;
  for (size_t I = 0; I < Plain.size(); ++I)
    EXPECT_NE(specHash(Plain.Jobs[I]), specHash(Pruned.Jobs[I]));

  std::string Dir = scratchDir("prunecross");
  Report PlainCold = run(Plain, Dir);
  EXPECT_EQ(PlainCold.cacheMisses(), Plain.size());

  // A pruned run against the unpruned-filled cache: all misses.
  Report PrunedCold = run(Pruned, Dir);
  EXPECT_EQ(PrunedCold.cacheHits(), 0u);
  EXPECT_EQ(PrunedCold.cacheMisses(), Pruned.size());

  // Both are now warm from their own entries.
  EXPECT_EQ(run(Plain, Dir).cacheHits(), Plain.size());
  EXPECT_EQ(run(Pruned, Dir).cacheHits(), Pruned.size());
}

TEST(EngineCache, PrunedWarmRunReplaysPrunedBytes) {
  // A pruned cold run and its warm replay must be byte-identical —
  // including the pruned literal counts in default bytes and the
  // pruned_vars/pruned_lits attribution under timings — and identical
  // to a cache-less pruned run.
  Campaign C = Campaign::predictGrid(
      "prune-warm", {"smallbank"}, {IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 2, 60000);
  for (JobSpec &J : C.Jobs)
    J.Prune = true;
  std::string Dir = scratchDir("prunewarm");

  Report Cold = run(C, Dir);
  EXPECT_EQ(Cold.cacheMisses(), C.size());
  Report Warm = run(C, Dir);
  EXPECT_EQ(Warm.cacheHits(), C.size());
  for (const JobResult &R : Warm.results()) {
    EXPECT_TRUE(R.CacheHit);
    EXPECT_GT(R.Stats.PrunedVars, 0u) << "warm result lost its pruning "
                                         "attribution";
  }
  EXPECT_EQ(Cold.toJson(), Warm.toJson());
  EXPECT_EQ(run(C).toJson(), Warm.toJson());
  // Timings-included bytes carry the pruning attribution through the
  // cache round-trip (the entry preserves the full JSON job entry).
  ReportOptions RO;
  RO.IncludeTimings = true;
  EXPECT_NE(Warm.toJson(RO).find("\"pruned_vars\""), std::string::npos);
}

TEST(ResultStore, CorruptWitnessIsAMiss) {
  // An entry that survives the schema/version/spec checks but carries
  // a damaged witness array must degrade to a miss, not be served
  // with mangled transaction ids (witnesses are default-report bytes).
  std::string Dir = scratchDir("witness");
  ResultStore Store(Dir);
  JobSpec S;
  S.Kind = JobKind::Predict;
  S.App = "smallbank";
  S.Cfg = WorkloadConfig::small(2);
  S.TimeoutMs = 60000;
  JobResult R = Engine::runJob(S);
  ASSERT_TRUE(R.Ok);
  ASSERT_EQ(R.Outcome, SmtResult::Sat);
  ASSERT_FALSE(R.Witness.empty());
  ASSERT_TRUE(Store.store(R));
  ASSERT_TRUE(Store.lookup(S).has_value());

  std::string Raw;
  ASSERT_TRUE(readFile(Store.entryPath(S), Raw));
  size_t Pos = Raw.find("\"witness\": [");
  ASSERT_NE(Pos, std::string::npos);
  std::string Doctored = Raw;
  Doctored.replace(Pos, 12, "\"witness\": [true, ");
  ASSERT_TRUE(writeFileAtomic(Store.entryPath(S), Doctored));
  EXPECT_FALSE(Store.lookup(S).has_value());
}

//===----------------------------------------------------------------------===
// Sharding and merging
//===----------------------------------------------------------------------===

TEST(Shard, RoundRobinPartitionsTheCampaign) {
  Campaign C = mixedCampaign();
  std::vector<size_t> Seen(C.size(), 0);
  for (unsigned K = 1; K <= 3; ++K) {
    Campaign Shard = shardCampaign(C, K, 3);
    EXPECT_EQ(Shard.Name, C.Name);
    for (size_t J = 0; J < Shard.Jobs.size(); ++J) {
      size_t Original = (K - 1) + J * 3; // inverse of the round-robin
      ASSERT_LT(Original, C.size());
      EXPECT_EQ(specHash(Shard.Jobs[J]), specHash(C.Jobs[Original]));
      ++Seen[Original];
    }
  }
  for (size_t Count : Seen)
    EXPECT_EQ(Count, 1u); // a partition: every job in exactly one shard
}

TEST(Shard, CampaignFilesRoundTrip) {
  Campaign C = mixedCampaign();
  std::string Dir = scratchDir("shardfiles");
  std::vector<std::string> Paths;
  std::string Error;
  ASSERT_TRUE(writeShardFiles(C, 3, Dir, &Paths, &Error)) << Error;
  ASSERT_EQ(Paths.size(), 3u);

  for (unsigned K = 1; K <= 3; ++K) {
    std::string Json;
    ASSERT_TRUE(readFile(Paths[K - 1], Json));
    std::optional<ShardedCampaign> Back = campaignFromJson(Json, &Error);
    ASSERT_TRUE(Back.has_value()) << Error;
    EXPECT_EQ(Back->ShardIndex, K);
    EXPECT_EQ(Back->ShardCount, 3u);
    EXPECT_EQ(Back->C.Name, C.Name);
    Campaign Expected = shardCampaign(C, K, 3);
    ASSERT_EQ(Back->C.size(), Expected.size());
    for (size_t J = 0; J < Expected.size(); ++J)
      EXPECT_EQ(canonicalSpec(Back->C.Jobs[J]),
                canonicalSpec(Expected.Jobs[J]));
  }

  EXPECT_FALSE(campaignFromJson("{\"schema\": \"bogus\"}", &Error));
}

TEST(Merge, ShardedReportsMergeByteIdentically) {
  Campaign C = mixedCampaign();
  std::string Unsharded = run(C).toJson();

  for (unsigned N : {1u, 3u}) {
    std::vector<std::string> Docs;
    for (unsigned K = 1; K <= N; ++K) {
      Report R = run(shardCampaign(C, K, N));
      R.setShard(K, N);
      Docs.push_back(R.toJson());
    }
    std::string Error;
    std::optional<Report> Merged = mergeShardReports(Docs, &Error);
    ASSERT_TRUE(Merged.has_value()) << Error;
    EXPECT_EQ(Merged->toJson(), Unsharded) << "N=" << N;
  }
}

TEST(Merge, ShardOrderDoesNotMatter) {
  Campaign C = mixedCampaign();
  std::vector<std::string> Docs;
  for (unsigned K : {3u, 1u, 2u}) { // deliberately out of order
    Report R = run(shardCampaign(C, K, 3));
    R.setShard(K, 3);
    Docs.push_back(R.toJson());
  }
  std::string Error;
  std::optional<Report> Merged = mergeShardReports(Docs, &Error);
  ASSERT_TRUE(Merged.has_value()) << Error;
  EXPECT_EQ(Merged->toJson(), run(C).toJson());
}

TEST(Merge, InconsistentShardsAreRejected) {
  Campaign C = mixedCampaign();
  Report R1 = run(shardCampaign(C, 1, 3));
  R1.setShard(1, 3);
  Report R2 = run(shardCampaign(C, 2, 3));
  R2.setShard(2, 3);

  std::string Error;
  // Wrong document count for the declared shard_count.
  EXPECT_FALSE(mergeShardReports({R1.toJson(), R2.toJson()}, &Error));
  EXPECT_NE(Error.find("shard"), std::string::npos);
  // Duplicate shard index.
  EXPECT_FALSE(
      mergeShardReports({R1.toJson(), R1.toJson(), R2.toJson()}, &Error));
  // Not a report at all.
  EXPECT_FALSE(mergeShardReports({"[1, 2]"}, &Error));
}

TEST(Merge, ToolVersionSkewIsRejected) {
  // A shard produced by a different tool version cannot merge: the
  // merged report is re-stamped with this binary's version, so any
  // skew would misattribute outcomes (and void byte-identity).
  Campaign C = mixedCampaign();
  Report R = run(C);
  std::string Doc = R.toJson();
  std::string Stamp =
      "\"tool_version\": \"" + std::string(toolVersion()) + "\"";
  size_t Pos = Doc.find(Stamp);
  ASSERT_NE(Pos, std::string::npos);
  Doc.replace(Pos, Stamp.size(), "\"tool_version\": \"isopredict-0\"");

  std::string Error;
  EXPECT_FALSE(mergeShardReports({Doc}, &Error));
  EXPECT_NE(Error.find("tool_version"), std::string::npos);
}
