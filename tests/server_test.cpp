//===- server_test.cpp - Prediction-service daemon tests ------*- C++ -*-===//
//
// Protocol parsing, tenant quotas and cache namespacing, the warm
// session pool, the TaskPool, and the full daemon end-to-end over
// loopback sockets — including concurrent connections, cross-tenant
// isolation, and graceful shutdown.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "cache/ResultStore.h"
#include "engine/Engine.h"
#include "engine/JobIo.h"
#include "engine/TaskPool.h"
#include "history/TraceIO.h"
#include "obs/Log.h"
#include "obs/Tracer.h"
#include "store/Store.h"
#include "support/Fs.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace isopredict;
using namespace isopredict::server;
using engine::JobSpec;

namespace {

std::string scratchDir(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string Dir =
      pathJoin(testing::TempDir(),
               formatString("isopredict-server-%s-%ld-%u", Tag,
                            static_cast<long>(::getpid()),
                            Counter.fetch_add(1)));
  EXPECT_TRUE(createDirectories(Dir));
  return Dir;
}

/// A small observed history for upload/session tests.
History observedHistory(uint64_t Seed) {
  auto App = makeApplication("voter");
  DataStore::Options SO;
  SO.Mode = StoreMode::SerialObserved;
  SO.Level = IsolationLevel::Serializable;
  SO.Seed = Seed;
  DataStore DS(SO);
  return WorkloadRunner::run(*App, DS, WorkloadConfig::small(Seed)).Hist;
}

//===----------------------------------------------------------------------===
// Protocol
//===----------------------------------------------------------------------===

TEST(Protocol, ParseRequestEnvelope) {
  std::string Error;
  std::optional<Request> R =
      parseRequest(R"({"id": 7, "verb": "ping"})", &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_TRUE(R->HasId);
  EXPECT_EQ(R->Id, 7u);
  EXPECT_EQ(R->Verb, "ping");

  // The id is optional; the verb is not.
  R = parseRequest(R"({"verb": "status"})", &Error);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->HasId);

  EXPECT_FALSE(parseRequest("not json", &Error).has_value());
  EXPECT_FALSE(parseRequest("[1, 2]", &Error).has_value());
  EXPECT_FALSE(parseRequest(R"({"id": 1})", &Error).has_value());
  EXPECT_NE(Error.find("verb"), std::string::npos);
  EXPECT_FALSE(parseRequest(R"({"verb": 9})", &Error).has_value());
}

TEST(Protocol, ParseRequestAppliesJsonLimits) {
  // Nesting beyond MaxRequestDepth bounces instead of recursing.
  std::string Deep = R"({"verb": "query", "spec": )";
  Deep.append(MaxRequestDepth + 8, '[');
  Deep += "1";
  Deep.append(MaxRequestDepth + 8, ']');
  Deep += "}";
  std::string Error;
  EXPECT_FALSE(parseRequest(Deep, &Error).has_value());
  EXPECT_NE(Error.find("depth"), std::string::npos) << Error;
}

TEST(Protocol, ErrorResponsesAreWellFormedFrames) {
  Request Req;
  Req.HasId = true;
  Req.Id = 3;
  Req.Verb = "query";
  std::string Line = errorResponse(Req, errc::QuotaExceeded, "over quota");
  ASSERT_EQ(Line.back(), '\n');
  std::optional<JsonValue> V = parseJson(Line, nullptr);
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(V->field("ok")->B);
  EXPECT_EQ(V->field("id")->Text, "3");
  EXPECT_EQ(V->field("error")->field("code")->Text, "quota_exceeded");
  EXPECT_EQ(V->field("error")->field("message")->Text, "over quota");
}

TEST(Protocol, LenientSpecFormFillsDefaults) {
  std::string Error;
  std::optional<JsonValue> Obj = parseJson(
      R"({"app": "voter", "workload": "small", "seed": 3,
          "level": "causal", "strategy": "relaxed", "timeout_ms": 1234})",
      &Error);
  ASSERT_TRUE(Obj.has_value());
  std::optional<JobSpec> S = parseQuerySpec(*Obj, &Error);
  ASSERT_TRUE(S.has_value()) << Error;
  EXPECT_EQ(S->App, "voter");
  EXPECT_EQ(S->Cfg.Sessions, 3u);
  EXPECT_EQ(S->Cfg.Seed, 3u);
  EXPECT_EQ(S->Level, IsolationLevel::Causal);
  EXPECT_EQ(S->Strat, Strategy::ApproxRelaxed);
  EXPECT_EQ(S->TimeoutMs, 1234u);

  // "SxT" workload labels round-trip.
  Obj = parseJson(R"({"app": "voter", "workload": "3x8"})", &Error);
  S = parseQuerySpec(*Obj, &Error);
  ASSERT_TRUE(S.has_value()) << Error;
  EXPECT_EQ(S->Cfg.TxnsPerSession, 8u);

  // Unknown enum values are rejected with a diagnostic.
  Obj = parseJson(R"({"app": "voter", "level": "dirty"})", &Error);
  EXPECT_FALSE(parseQuerySpec(*Obj, &Error).has_value());
  EXPECT_NE(Error.find("dirty"), std::string::npos);
}

TEST(Protocol, StrictSpecFormRoundTripsThroughJobIo) {
  JobSpec S;
  S.Kind = engine::JobKind::Predict;
  S.App = "smallbank";
  S.Cfg = WorkloadConfig::small(2);
  S.Level = IsolationLevel::Causal;
  S.Strat = Strategy::ApproxRelaxed;
  S.TimeoutMs = 2500;

  JsonWriter J(JsonWriter::Style::Compact);
  J.openObject();
  engine::writeJobSpecFields(J, S);
  J.closeObject();
  std::string Error;
  std::optional<JsonValue> Obj = parseJson(J.take(), &Error);
  ASSERT_TRUE(Obj.has_value());
  std::optional<JobSpec> Back = parseQuerySpec(*Obj, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(engine::specHash(*Back), engine::specHash(S));
}

//===----------------------------------------------------------------------===
// TaskPool
//===----------------------------------------------------------------------===

TEST(TaskPool, ZeroThreadsRunsInline) {
  engine::TaskPool Pool(0);
  std::thread::id Caller = std::this_thread::get_id();
  std::atomic<int> Ran{0};
  Pool.submit([&] {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    ++Ran;
  });
  EXPECT_EQ(Ran.load(), 1);
  Pool.drain();
}

TEST(TaskPool, DrainWaitsForAllTasks) {
  engine::TaskPool Pool(4);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&] { ++Ran; });
  Pool.drain();
  EXPECT_EQ(Ran.load(), 64);
  // The pool is reusable after a drain.
  Pool.submit([&] { ++Ran; });
  Pool.drain();
  EXPECT_EQ(Ran.load(), 65);
  Pool.shutdown();
}

TEST(TaskPool, TasksRunConcurrently) {
  engine::TaskPool Pool(2);
  // Two tasks that each wait for the other prove two workers exist.
  std::atomic<int> Arrived{0};
  for (int I = 0; I < 2; ++I)
    Pool.submit([&] {
      ++Arrived;
      while (Arrived.load() < 2)
        std::this_thread::yield();
    });
  Pool.drain();
  EXPECT_EQ(Arrived.load(), 2);
}

//===----------------------------------------------------------------------===
// Tenants: quotas and cache namespacing
//===----------------------------------------------------------------------===

TEST(Tenant, HistoryQuotaAllowsReplacement) {
  TenantConfig Cfg;
  Cfg.Name = "t";
  Cfg.AppId = "t";
  Cfg.MaxHistories = 2;
  Tenant T(Cfg);
  EXPECT_TRUE(T.putHistory("a", observedHistory(1)));
  EXPECT_TRUE(T.putHistory("b", observedHistory(2)));
  // At quota: a new name fails, replacing an existing one succeeds.
  EXPECT_FALSE(T.putHistory("c", observedHistory(3)));
  EXPECT_TRUE(T.putHistory("a", observedHistory(3)));
  EXPECT_EQ(T.numHistories(), 2u);
  EXPECT_TRUE(T.getHistory("a").has_value());
  EXPECT_FALSE(T.getHistory("c").has_value());
}

TEST(Tenant, QuotaAdmissionLifecycle) {
  TenantConfig Cfg;
  Cfg.Name = "t";
  Cfg.MaxConcurrent = 1;
  Cfg.MaxQueued = 1;
  Tenant T(Cfg);

  EXPECT_EQ(T.admitQuery(), Tenant::Admit::Run);
  EXPECT_EQ(T.admitQuery(), Tenant::Admit::Queue);
  EXPECT_EQ(T.admitQuery(), Tenant::Admit::Reject);
  Tenant::Counters C = T.counters();
  EXPECT_EQ(C.Running, 1u);
  EXPECT_EQ(C.Queued, 1u);
  EXPECT_EQ(C.Rejected, 1u);

  // Finishing the runner reports the waiter; promotion frees the queue.
  EXPECT_TRUE(T.finishQuery());
  T.promoteQueued();
  C = T.counters();
  EXPECT_EQ(C.Running, 1u);
  EXPECT_EQ(C.Queued, 0u);
  EXPECT_EQ(C.Completed, 1u);
  EXPECT_FALSE(T.finishQuery());
  EXPECT_EQ(T.counters().Completed, 2u);
}

TEST(Tenant, ScopedSpecsNamespaceTheSharedCache) {
  TenantConfig A, B;
  A.Name = A.AppId = "acme";
  B.Name = B.AppId = "bravo";
  Tenant TA(A), TB(B);

  JobSpec S;
  S.Kind = engine::JobKind::Predict;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(1);

  JobSpec SA = scopedSpec(TA, S), SB = scopedSpec(TB, S);
  EXPECT_EQ(SA.App, "acme:voter");
  EXPECT_EQ(SB.App, "bravo:voter");
  EXPECT_NE(engine::canonicalSpec(SA), engine::canonicalSpec(SB));

  // The pin the acceptance criteria name: identical queries from two
  // tenants land on different result-cache entries.
  cache::ResultStore Store(scratchDir("scoped"));
  EXPECT_NE(Store.entryPath(SA), Store.entryPath(SB));

  // History scoping is content-addressed per tenant: the same trace
  // under two tenants differs, the same trace under two names does not.
  History H = observedHistory(1);
  ASSERT_TRUE(TA.putHistory("one", observedHistory(1)));
  ASSERT_TRUE(TA.putHistory("two", observedHistory(1)));
  ASSERT_TRUE(TB.putHistory("one", observedHistory(1)));
  StoredHistory HA1 = *TA.getHistory("one"), HA2 = *TA.getHistory("two"),
                HB = *TB.getHistory("one");
  JobSpec QA1 = scopedHistorySpec(TA, HA1, S),
          QA2 = scopedHistorySpec(TA, HA2, S),
          QB = scopedHistorySpec(TB, HB, S);
  EXPECT_EQ(QA1.App, QA2.App);
  EXPECT_NE(QA1.App, QB.App);
  EXPECT_EQ(QA1.App.find("@acme/"), 0u) << QA1.App;
}

TEST(TenantRegistry, OpenModeHasImplicitAdmin) {
  TenantRegistry R;
  Tenant *Default = R.defaultTenant();
  ASSERT_NE(Default, nullptr);
  EXPECT_TRUE(Default->config().Admin);
  EXPECT_EQ(R.authenticate("default", ""), Default);
  EXPECT_EQ(R.authenticate("nobody", ""), nullptr);
}

TEST(TenantRegistry, ConfigFileLocksDownAuth) {
  std::string Error;
  std::optional<TenantRegistry> R = TenantRegistry::fromJson(
      R"({"tenants": [
           {"name": "acme", "api_key": "k1", "max_concurrent": 2},
           {"name": "ops", "admin": true}]})",
      &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_EQ(R->defaultTenant(), nullptr); // auth is mandatory
  EXPECT_EQ(R->authenticate("acme", "wrong"), nullptr);
  Tenant *Acme = R->authenticate("acme", "k1");
  ASSERT_NE(Acme, nullptr);
  EXPECT_EQ(Acme->config().MaxConcurrent, 2u);
  EXPECT_FALSE(Acme->config().Admin);
  EXPECT_NE(R->authenticate("ops", ""), nullptr);

  // Duplicate names are a config error.
  EXPECT_FALSE(TenantRegistry::fromJson(
                   R"({"tenants": [{"name": "a"}, {"name": "a"}]})", &Error)
                   .has_value());
}

//===----------------------------------------------------------------------===
// SessionPool
//===----------------------------------------------------------------------===

TEST(SessionPool, CheckoutLruLifecycle) {
  History H = observedHistory(1);
  SessionPool Pool(2);
  std::string K1 = SessionPool::key("t", 1, false);
  std::string K2 = SessionPool::key("t", 2, false);
  std::string K3 = SessionPool::key("t", 3, false);
  EXPECT_NE(K1, K2);
  EXPECT_NE(SessionPool::key("t", 1, true), K1); // prune is part of it
  EXPECT_NE(SessionPool::key("u", 1, false), K1);

  EXPECT_EQ(Pool.acquire(K1), nullptr); // cold
  Pool.release(K1, std::make_unique<PredictSession>(H));
  Pool.release(K2, std::make_unique<PredictSession>(H));

  // Touch K1 (checkout + return), then add K3: K2 is the LRU victim.
  std::unique_ptr<PredictSession> S = Pool.acquire(K1);
  ASSERT_NE(S, nullptr);
  Pool.release(K1, std::move(S));
  Pool.release(K3, std::make_unique<PredictSession>(H));
  EXPECT_NE(Pool.acquire(K1), nullptr);
  EXPECT_EQ(Pool.acquire(K2), nullptr);
  EXPECT_NE(Pool.acquire(K3), nullptr);

  SessionPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Capacity, 2u);
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_EQ(St.Hits, 3u);
  EXPECT_EQ(St.Misses, 2u);

  Pool.clear();
  EXPECT_EQ(Pool.stats().Size, 0u);
}

TEST(SessionPool, ZeroCapacityDisablesPooling) {
  History H = observedHistory(1);
  SessionPool Pool(0);
  std::string K = SessionPool::key("t", 1, false);
  Pool.release(K, std::make_unique<PredictSession>(H));
  EXPECT_EQ(Pool.acquire(K), nullptr);
}

//===----------------------------------------------------------------------===
// End-to-end over loopback
//===----------------------------------------------------------------------===

/// A blocking NDJSON client for one loopback connection.
struct TestClient {
  int Fd = -1;
  std::string Buf;
  uint64_t NextId = 1;

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connect(unsigned Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Port));
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }

  bool sendLine(const std::string &Line) {
    size_t Off = 0;
    while (Off < Line.size()) {
      ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  std::optional<std::string> readLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Out = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Out;
      }
      char Chunk[4096];
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return std::nullopt;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// One request/response round trip, parsed.
  std::optional<JsonValue> request(const std::string &BodyFields) {
    std::string Line = formatString("{\"id\": %llu%s%s}\n",
                                    static_cast<unsigned long long>(NextId++),
                                    BodyFields.empty() ? "" : ", ",
                                    BodyFields.c_str());
    if (!sendLine(Line))
      return std::nullopt;
    std::optional<std::string> Resp = readLine();
    if (!Resp)
      return std::nullopt;
    return parseJson(*Resp, nullptr);
  }
};

/// Body fields of an upload request (spliced into the id envelope).
std::string uploadBody(const char *Name, const History &H) {
  return formatString("\"verb\": \"upload\", \"name\": \"%s\", \"trace\": \"%s\"",
                      Name, jsonEscape(writeTrace(H)).c_str());
}

bool isOk(const std::optional<JsonValue> &V) {
  if (!V || V->K != JsonValue::Kind::Object)
    return false;
  const JsonValue *Ok = V->field("ok");
  return Ok && Ok->K == JsonValue::Kind::Bool && Ok->B;
}

std::string errorCode(const std::optional<JsonValue> &V) {
  if (!V)
    return "<no response>";
  const JsonValue *E = V->field("error");
  const JsonValue *C = E ? E->field("code") : nullptr;
  return C ? C->Text : "<no code>";
}

/// A Server running on its own thread for one test's lifetime.
struct TestServer {
  Server S;
  std::thread Thread;

  TestServer(ServerOptions O, TenantRegistry R)
      : S(std::move(O), std::move(R)) {}

  bool start() {
    std::string Error;
    if (!S.start(&Error)) {
      ADD_FAILURE() << Error;
      return false;
    }
    Thread = std::thread([this] { S.serve(); });
    return true;
  }

  ~TestServer() {
    S.requestStop();
    if (Thread.joinable())
      Thread.join();
  }
};

TEST(ServerE2E, PingUploadQueryAndCacheHit) {
  ServerOptions O;
  O.Workers = 2;
  O.CacheDir = scratchDir("e2e-cache");
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  EXPECT_TRUE(isOk(C.request(R"("verb": "ping")")));

  // Upload a locally observed trace, then query it twice: the second
  // answer must come from the result cache.
  History H = observedHistory(2);
  std::optional<JsonValue> R = C.request(uploadBody("h1", H));
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_EQ(R->field("name")->Text, "h1");

  // One line: a newline inside the body would split the NDJSON frame.
  const char *Query = R"("verb": "query", "history": "h1", )"
                      R"("level": "causal", "strategy": "relaxed", )"
                      R"("timeout_ms": 30000)";
  std::optional<JsonValue> First = C.request(Query);
  ASSERT_TRUE(isOk(First)) << errorCode(First);
  EXPECT_FALSE(First->field("cache_hit")->B);
  ASSERT_NE(First->field("job"), nullptr);
  std::string Outcome = First->field("job")->field("result")->Text;

  std::optional<JsonValue> Second = C.request(Query);
  ASSERT_TRUE(isOk(Second)) << errorCode(Second);
  EXPECT_TRUE(Second->field("cache_hit")->B);
  EXPECT_EQ(Second->field("answered_by")->Text, "cache");
  EXPECT_EQ(Second->field("job")->field("result")->Text, Outcome);
  // The cached answer surfaces the client-facing identity, not the
  // tenant-scoped cache key.
  EXPECT_EQ(Second->field("job")->field("app")->Text, "@h1");
}

TEST(ServerE2E, ExtendGrowsHistoryAndWarmSessions) {
  ServerOptions O;
  O.Workers = 1;
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));

  // Split an observed trace into a base prefix and a headerless delta
  // tail at a transaction boundary (the TraceIO split contract).
  History Full = observedHistory(5);
  TxnId Cut = static_cast<TxnId>(Full.numTxns() / 2);
  ASSERT_GE(Cut, 1u);
  ASSERT_LT(Cut + 1, Full.numTxns());
  std::string Text = writeTrace(Full);
  size_t Lines = 1; // history directive
  for (TxnId T = 1; T <= Cut; ++T)
    Lines += Full.txn(T).Events.size() + 2; // txn + events + commit
  size_t Off = 0;
  for (size_t I = 0; I < Lines; ++I)
    Off = Text.find('\n', Off) + 1;
  std::string BaseText = Text.substr(0, Off), DeltaText = Text.substr(Off);

  // Upload the prefix and warm a session on it.
  std::optional<JsonValue> R = C.request(formatString(
      "\"verb\": \"upload\", \"name\": \"h\", \"trace\": \"%s\"",
      jsonEscape(BaseText).c_str()));
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  const char *Query = R"("verb": "query", "history": "h", )"
                      R"("level": "causal", "strategy": "relaxed", )"
                      R"("timeout_ms": 30000)";
  R = C.request(Query);
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_FALSE(R->field("warm_session")->B);

  // Extend: the stored history grows to the full trace and the pooled
  // warm session is grown in place and re-keyed.
  R = C.request(formatString(
      "\"verb\": \"extend\", \"name\": \"h\", \"trace\": \"%s\"",
      jsonEscape(DeltaText).c_str()));
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_EQ(R->field("txns")->Text,
            formatString("%u", static_cast<unsigned>(Full.numTxns() - 1)));
  EXPECT_EQ(R->field("delta_txns")->Text,
            formatString("%u", static_cast<unsigned>(Full.numTxns() - 1 - Cut)));
  EXPECT_EQ(R->field("extended_sessions")->Text, "1");
  std::string GrownHash = R->field("content_hash")->Text;

  // The grown history is content-identical to uploading the unsplit
  // trace — extend-then-hash equals upload-of-full hash.
  R = C.request(formatString(
      "\"verb\": \"upload\", \"name\": \"full\", \"trace\": \"%s\"",
      jsonEscape(Text).c_str()));
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_EQ(R->field("content_hash")->Text, GrownHash);

  // Re-query: answered by the extended warm session, and the outcome
  // matches a cold session over the full trace.
  R = C.request(Query);
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_TRUE(R->field("warm_session")->B);
  EXPECT_EQ(R->field("answered_by")->Text, "warm_session");
  std::string WarmOutcome = R->field("job")->field("result")->Text;
  R = C.request(R"("verb": "query", "history": "full", )"
                R"("level": "causal", "strategy": "relaxed", )"
                R"("timeout_ms": 30000)");
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_EQ(R->field("job")->field("result")->Text, WarmOutcome);

  // Error surface: unknown names and malformed deltas bounce.
  R = C.request(R"("verb": "extend", "name": "nope", "trace": "txn 0")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "unknown_history");
  R = C.request(
      R"("verb": "extend", "name": "h", "trace": "history 3\n")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "bad_request");
}

TEST(ServerE2E, SpecQueryMatchesBatchEngine) {
  ServerOptions O;
  O.Workers = 1;
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  JobSpec S;
  S.Kind = engine::JobKind::Predict;
  S.App = "voter";
  S.Cfg = WorkloadConfig::small(1);
  S.Level = IsolationLevel::Causal;
  S.Strat = Strategy::ApproxRelaxed;
  S.TimeoutMs = 30000;

  JsonWriter J(JsonWriter::Style::Compact);
  J.openObjectIn("spec");
  engine::writeJobSpecFields(J, S);
  J.closeObject();
  std::string Spec = J.take();
  Spec.pop_back();

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  std::optional<JsonValue> R =
      C.request("\"verb\": \"query\", " + Spec);
  ASSERT_TRUE(isOk(R)) << errorCode(R);

  engine::JobResult Batch = engine::Engine::runJob(S);
  const JsonValue *Job = R->field("job");
  ASSERT_NE(Job, nullptr);
  EXPECT_EQ(Job->field("result")->Text, toString(Batch.Outcome));
  EXPECT_EQ(Job->field("spec_hash")->Text,
            formatString("%016llx", static_cast<unsigned long long>(
                                        engine::specHash(S))));
}

TEST(ServerE2E, TenantsAreIsolated) {
  std::string Error;
  std::optional<TenantRegistry> Reg = TenantRegistry::fromJson(
      R"({"tenants": [{"name": "acme", "api_key": "k1"},
                      {"name": "bravo", "api_key": "k2"}]})",
      &Error);
  ASSERT_TRUE(Reg.has_value()) << Error;
  ServerOptions O;
  O.Workers = 2;
  TestServer TS(std::move(O), std::move(*Reg));
  ASSERT_TRUE(TS.start());

  // Unauthenticated connections can ping but not query.
  TestClient A, B;
  ASSERT_TRUE(A.connect(TS.S.port()));
  ASSERT_TRUE(B.connect(TS.S.port()));
  std::optional<JsonValue> R =
      A.request(R"("verb": "query", "history": "h")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "auth_required");

  EXPECT_FALSE(isOk(A.request(R"("verb": "auth", "tenant": "acme")")));
  ASSERT_TRUE(isOk(
      A.request(R"("verb": "auth", "tenant": "acme", "api_key": "k1")")));
  ASSERT_TRUE(isOk(
      B.request(R"("verb": "auth", "tenant": "bravo", "api_key": "k2")")));

  // acme's history is invisible to bravo.
  ASSERT_TRUE(isOk(A.request(uploadBody("secret", observedHistory(3)))));
  R = B.request(R"("verb": "query", "history": "secret")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "unknown_history");

  // Neither may shut the server down.
  R = A.request(R"("verb": "shutdown")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "not_authorized");
}

TEST(ServerE2E, ConcurrentConnectionsAllAnswer) {
  ServerOptions O;
  O.Workers = 2;
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  constexpr int NumClients = 6;
  std::atomic<int> OkCount{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumClients; ++I)
    Threads.emplace_back([&, I] {
      TestClient C;
      if (!C.connect(TS.S.port()))
        return;
      for (int K = 0; K < 5; ++K)
        if (isOk(C.request(R"("verb": "ping")")))
          ++OkCount;
      // A real query on some of the connections keeps workers busy.
      if (I % 3 == 0) {
        std::optional<JsonValue> R = C.request(
            R"("verb": "query", "spec": {"app": "voter", "seed": 1, )"
            R"("level": "causal", "timeout_ms": 30000})");
        if (isOk(R))
          ++OkCount;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(OkCount.load(), NumClients * 5 + 2);
}

TEST(ServerE2E, QuotaRejectionsAreWellFormedErrors) {
  std::string Error;
  std::optional<TenantRegistry> Reg = TenantRegistry::fromJson(
      R"({"tenants": [{"name": "tiny", "max_concurrent": 1,
                       "max_queued": 1}]})",
      &Error);
  ASSERT_TRUE(Reg.has_value()) << Error;
  ServerOptions O;
  O.Workers = 2;
  TestServer TS(std::move(O), std::move(*Reg));
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  ASSERT_TRUE(isOk(C.request(R"("verb": "auth", "tenant": "tiny")")));

  // Pipeline a burst: with 1 running + 1 queued, the rest must come
  // back as quota_exceeded errors on the same connection (never a
  // disconnect), and the admitted ones must still answer.
  constexpr int Burst = 6;
  for (int I = 0; I < Burst; ++I)
    ASSERT_TRUE(C.sendLine(formatString(
        "{\"id\": %d, \"verb\": \"query\", \"spec\": {\"app\": \"voter\", "
        "\"seed\": 1, \"level\": \"causal\", \"timeout_ms\": 30000}}\n",
        100 + I)));
  int OkCount = 0, Rejected = 0;
  for (int I = 0; I < Burst; ++I) {
    std::optional<std::string> Line = C.readLine();
    ASSERT_TRUE(Line.has_value()) << "connection dropped mid-burst";
    std::optional<JsonValue> V = parseJson(*Line, nullptr);
    ASSERT_TRUE(V.has_value());
    if (isOk(V))
      ++OkCount;
    else {
      EXPECT_EQ(errorCode(V), "quota_exceeded");
      ++Rejected;
    }
  }
  EXPECT_GE(OkCount, 2); // the running + queued pair at minimum
  EXPECT_EQ(OkCount + Rejected, Burst);
  // The connection survived the burst.
  EXPECT_TRUE(isOk(C.request(R"("verb": "ping")")));
}

TEST(ServerE2E, ShutdownVerbDrainsAndStatusReports) {
  ServerOptions O;
  O.Workers = 1;
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  std::optional<JsonValue> St = C.request(R"("verb": "status")");
  ASSERT_TRUE(isOk(St));
  EXPECT_EQ(St->field("schema")->Text, "isopredict-server-status/1");
  ASSERT_NE(St->field("metrics"), nullptr);
  EXPECT_NE(St->field("metrics")->field("counters"), nullptr);

  // Open mode's implicit tenant is admin: shutdown is accepted and the
  // server thread winds down on its own.
  std::optional<JsonValue> R = C.request(R"("verb": "shutdown")");
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  TS.Thread.join();
  EXPECT_FALSE(TS.Thread.joinable());
}

//===----------------------------------------------------------------------===
// Serving telemetry
//===----------------------------------------------------------------------===

/// Restores the global logger (stderr, info, text) when a test that
/// retargeted it finishes.
struct LogRestore {
  ~LogRestore() {
    std::string Error;
    obs::Log::global().configure(obs::Log::Options(), &Error);
  }
};

TEST(ServerE2E, MetricsVerbServesPrometheusAndJson) {
  std::string Error;
  std::optional<TenantRegistry> Reg = TenantRegistry::fromJson(
      R"({"tenants": [{"name": "acme", "api_key": "k1"},
                      {"name": "bravo", "api_key": "k2"}]})",
      &Error);
  ASSERT_TRUE(Reg.has_value()) << Error;
  ServerOptions O;
  O.Workers = 2;
  TestServer TS(std::move(O), std::move(*Reg));
  ASSERT_TRUE(TS.start());

  // Each tenant runs one query so both mint labeled series.
  const char *Query = R"("verb": "query", "spec": {"app": "voter", )"
                      R"("workload": "small", "seed": 1, )"
                      R"("timeout_ms": 30000})";
  TestClient A, B;
  ASSERT_TRUE(A.connect(TS.S.port()));
  ASSERT_TRUE(B.connect(TS.S.port()));
  ASSERT_TRUE(isOk(A.request(
      R"("verb": "auth", "tenant": "acme", "api_key": "k1")")));
  ASSERT_TRUE(isOk(B.request(
      R"("verb": "auth", "tenant": "bravo", "api_key": "k2")")));
  ASSERT_TRUE(isOk(A.request(Query)));
  ASSERT_TRUE(isOk(B.request(Query)));

  // Default format is the Prometheus text exposition.
  std::optional<JsonValue> R = A.request(R"("verb": "metrics")");
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_EQ(R->field("schema")->Text, "isopredict-server-metrics/1");
  EXPECT_EQ(R->field("format")->Text, "prometheus");
  const JsonValue *Expo = R->field("exposition");
  ASSERT_NE(Expo, nullptr);
  const std::string &Text = Expo->Text;
  EXPECT_NE(Text.find("# TYPE server_requests counter"), std::string::npos);
  // Per-tenant, per-verb labeled series — one per tenant, never shared.
  EXPECT_NE(
      Text.find(
          "server_requests{tenant=\"acme\",verb=\"query\",outcome=\"ok\"}"),
      std::string::npos);
  EXPECT_NE(
      Text.find(
          "server_requests{tenant=\"bravo\",verb=\"query\",outcome=\"ok\"}"),
      std::string::npos);
  EXPECT_NE(Text.find("server_queries{tenant=\"acme\""), std::string::npos);
  // The per-tenant latency family shares its name with the unlabeled
  // total histogram; both live under one TYPE line.
  EXPECT_NE(Text.find("# TYPE server_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("server_query_seconds_bucket{tenant=\"acme\",le="),
            std::string::npos);

  // JSON variant carries the status-style metrics block.
  R = A.request(R"("verb": "metrics", "format": "json")");
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  const JsonValue *M = R->field("metrics");
  ASSERT_NE(M, nullptr);
  ASSERT_NE(M->field("counters"), nullptr);
  const JsonValue *Families = M->field("families");
  ASSERT_NE(Families, nullptr);
  ASSERT_NE(Families->field("server.requests"), nullptr);

  // Unknown formats bounce as bad_request.
  R = A.request(R"("verb": "metrics", "format": "xml")");
  EXPECT_FALSE(isOk(R));
  EXPECT_EQ(errorCode(R), "bad_request");
}

TEST(ServerE2E, StatusReportsRollingLatencyPercentiles) {
  ServerOptions O;
  O.Workers = 1;
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  ASSERT_TRUE(isOk(C.request(
      R"("verb": "query", "spec": {"app": "voter", )"
      R"("workload": "small", "seed": 2, "timeout_ms": 30000})")));

  std::optional<JsonValue> St = C.request(R"("verb": "status")");
  ASSERT_TRUE(isOk(St));
  const JsonValue *Latency = St->field("latency");
  ASSERT_NE(Latency, nullptr);
  const JsonValue *Verbs = Latency->field("verbs");
  ASSERT_NE(Verbs, nullptr);
  const JsonValue *Q = Verbs->field("query");
  ASSERT_NE(Q, nullptr);
  for (const char *Win : {"1m", "5m"}) {
    const JsonValue *W = Q->field(Win);
    ASSERT_NE(W, nullptr) << Win;
    ASSERT_NE(W->field("count"), nullptr);
    EXPECT_GE(std::stod(W->field("count")->Text), 1.0);
    double P50 = std::stod(W->field("p50")->Text);
    double P95 = std::stod(W->field("p95")->Text);
    double P99 = std::stod(W->field("p99")->Text);
    EXPECT_GT(P50, 0.0);
    EXPECT_GE(P95, P50);
    EXPECT_GE(P99, P95);
  }
  // The per-tenant rings see the query too (open mode → "default").
  const JsonValue *Tenants = Latency->field("tenants");
  ASSERT_NE(Tenants, nullptr);
  ASSERT_NE(Tenants->field("default"), nullptr);
}

TEST(ServerE2E, SlowQueryLogCapturesTenantAndSpec) {
  LogRestore Restore;
  std::string LogPath =
      pathJoin(scratchDir("slowlog"), "server.ndjson");
  obs::Log::Options LO;
  LO.Ndjson = true;
  LO.Path = LogPath;
  std::string Error;
  ASSERT_TRUE(obs::Log::global().configure(LO, &Error)) << Error;

  ServerOptions O;
  O.Workers = 1;
  O.SlowQueryMs = 1e-6; // every query crosses a nanosecond threshold
  TestServer TS(std::move(O), TenantRegistry());
  ASSERT_TRUE(TS.start());

  TestClient C;
  ASSERT_TRUE(C.connect(TS.S.port()));
  ASSERT_TRUE(isOk(C.request(
      R"("verb": "query", "spec": {"app": "voter", )"
      R"("workload": "small", "seed": 3, "timeout_ms": 30000})")));

  std::string Text;
  ASSERT_TRUE(readFile(LogPath, Text, &Error)) << Error;
  const JsonValue *Fields = nullptr;
  std::optional<JsonValue> Slow;
  for (std::string_view L : splitString(Text, '\n')) {
    if (L.empty())
      continue;
    std::optional<JsonValue> Doc = parseJson(std::string(L), &Error);
    ASSERT_TRUE(Doc.has_value()) << Error;
    const JsonValue *Event = Doc->field("event");
    if (Event && Event->Text == "slow_query") {
      Slow = std::move(*Doc);
      Fields = Slow->field("fields");
      break;
    }
  }
  ASSERT_NE(Fields, nullptr) << "no slow_query event in:\n" << Text;
  EXPECT_EQ(Slow->field("level")->Text, "warn");
  ASSERT_NE(Fields->field("tenant"), nullptr);
  EXPECT_EQ(Fields->field("tenant")->Text, "default");
  ASSERT_NE(Fields->field("spec_hash"), nullptr);
  EXPECT_EQ(Fields->field("spec_hash")->Text.size(), 16u); // %016llx
  ASSERT_NE(Fields->field("seconds"), nullptr);
  ASSERT_NE(Fields->field("outcome"), nullptr);
  // Z3 search statistics ride along when the solver ran.
  EXPECT_NE(Fields->field("solver_conflicts"), nullptr);

  // The slow-query counter family saw it too.
  TestClient M;
  ASSERT_TRUE(M.connect(TS.S.port()));
  std::optional<JsonValue> R = M.request(R"("verb": "metrics")");
  ASSERT_TRUE(isOk(R)) << errorCode(R);
  EXPECT_NE(R->field("exposition")
                ->Text.find("server_slow_queries{tenant=\"default\"}"),
            std::string::npos);
}

TEST(ServerE2E, TraceDirRotatesRingFlushes) {
  std::string Dir = scratchDir("tracedir");
  ServerOptions O;
  O.Workers = 1;
  O.TraceDir = Dir;
  O.TraceFlushSec = 3600; // only the final drain flush fires
  O.TraceRingCapacity = 32;
  {
    TestServer TS(std::move(O), TenantRegistry());
    ASSERT_TRUE(TS.start());
    TestClient C;
    ASSERT_TRUE(C.connect(TS.S.port()));
    ASSERT_TRUE(isOk(C.request(
        R"("verb": "query", "spec": {"app": "voter", )"
        R"("workload": "small", "seed": 4, "timeout_ms": 30000})")));
  } // ~TestServer drains; the flusher writes its final rotation

  // The drain restored the global tracer for later tests and wrote at
  // least one rotated trace file with spans in it.
  EXPECT_EQ(obs::Tracer::global().ringCapacity(), 0u);
  std::string Text, Error;
  ASSERT_TRUE(readFile(pathJoin(Dir, "trace-000000.json"), Text, &Error))
      << Error;
  std::optional<JsonValue> Doc = parseJson(Text, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const JsonValue *Events = Doc->field("traceEvents");
  ASSERT_NE(Events, nullptr);
  EXPECT_FALSE(Events->Items.empty());
}

} // namespace
