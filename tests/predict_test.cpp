//===- predict_test.cpp - Predictive analysis tests -----------*- C++ -*-===//

#include "predict/Predict.h"

#include "predict/PredictSession.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

namespace {

PredictOptions opts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  O.TimeoutMs = 60000;
  return O;
}

/// Checks the structural soundness guarantees every Sat prediction must
/// carry: the predicted prefix is valid under the target level,
/// genuinely unserializable, preserves session order, and only changed
/// the writers of reads at-or-after the session's boundary.
void expectWellFormedPrediction(const History &Observed, const Prediction &P,
                                IsolationLevel Level) {
  ASSERT_EQ(P.Result, SmtResult::Sat);
  const History &Pred = P.Predicted;
  ASSERT_EQ(Pred.numTxns(), Observed.numTxns());

  if (Level == IsolationLevel::Causal)
    EXPECT_TRUE(isCausal(Pred));
  else
    EXPECT_TRUE(isReadCommitted(Pred));

  EXPECT_EQ(checkSerializableSmt(Pred), SerResult::Unserializable);

  for (TxnId T = 1; T < Pred.numTxns(); ++T) {
    const Transaction &PT = Pred.txn(T);
    const Transaction &OT = Observed.txn(T);
    EXPECT_EQ(PT.Session, OT.Session);
    uint32_t Boundary = P.BoundaryPos[OT.Session];
    uint32_t Cut = P.CutPos[OT.Session];
    size_t PI = 0;
    for (const Event &OE : OT.Events) {
      if (Cut != InfPos && OE.Pos > Cut) {
        // Excluded from the prediction; nothing to compare.
        continue;
      }
      ASSERT_LT(PI, PT.Events.size());
      const Event &PE = PT.Events[PI++];
      EXPECT_EQ(PE.Kind, OE.Kind);
      EXPECT_EQ(PE.Key, OE.Key);
      EXPECT_EQ(PE.Pos, OE.Pos);
      if (OE.Kind == EventKind::Read && OE.Pos < Boundary) {
        EXPECT_EQ(PE.Writer, OE.Writer)
            << "read before the boundary changed writer";
      }
    }
    EXPECT_EQ(PI, PT.Events.size());
  }
}

} // namespace

//===----------------------------------------------------------------------===
// The paper's running examples
//===----------------------------------------------------------------------===

TEST(Predict, DepositRelaxedFindsFigure3a) {
  // §3: from the observed Figure 2a, IsoPredict predicts the causal,
  // unserializable Figure 3a. The divergent deposit keeps its write, so
  // this needs the relaxed boundary.
  History H = depositObserved();
  Prediction P = predict(H, opts(IsolationLevel::Causal,
                                 Strategy::ApproxRelaxed));
  expectWellFormedPrediction(H, P, IsolationLevel::Causal);
  EXPECT_FALSE(P.Witness.empty()) << "approx predictions carry a pco cycle";
}

TEST(Predict, DepositStrictHasNoPrediction) {
  // Under the strict boundary the diverging deposit loses its write, and
  // the remaining prefix is serializable — no prediction exists.
  History H = depositObserved();
  EXPECT_EQ(predict(H, opts(IsolationLevel::Causal, Strategy::ApproxStrict))
                .Result,
            SmtResult::Unsat);
  EXPECT_EQ(predict(H, opts(IsolationLevel::Causal, Strategy::ExactStrict))
                .Result,
            SmtResult::Unsat);
}

TEST(Predict, CrossReadAllStrategiesPredict) {
  // Figure 8: the divergent reads are the last events of their
  // transactions, so even the strict boundary predicts.
  History H = crossReadObserved();
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed}) {
    Prediction P = predict(H, opts(IsolationLevel::Causal, S));
    EXPECT_EQ(P.Result, SmtResult::Sat) << toString(S);
    if (S != Strategy::ExactStrict && P.Result == SmtResult::Sat)
      expectWellFormedPrediction(H, P, IsolationLevel::Causal);
  }
}

TEST(Predict, CrossReadRcAlsoPredicts) {
  History H = crossReadObserved();
  Prediction P =
      predict(H, opts(IsolationLevel::ReadCommitted, Strategy::ApproxStrict));
  expectWellFormedPrediction(H, P, IsolationLevel::ReadCommitted);
}

TEST(Predict, BankDivergenceRelaxedOnly) {
  // Figure 9: the strict boundary excludes the withdraw's write and the
  // remaining prefix is serializable (Fig. 9e); the relaxed boundary
  // keeps the whole transaction and predicts (Fig. 9f).
  History H = bankDivergenceObserved();
  EXPECT_EQ(predict(H, opts(IsolationLevel::Causal, Strategy::ApproxStrict))
                .Result,
            SmtResult::Unsat);
  Prediction P =
      predict(H, opts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  expectWellFormedPrediction(H, P, IsolationLevel::Causal);
}

TEST(Predict, RankPreventsSelfJustifyingCycles) {
  // Figure 6: without the rank constraints the solver could justify
  // ww(t1,t2) and pco(t1,t3) from each other and report a spurious
  // cycle. Every feasible execution of this history is serializable.
  History H = selfJustifyTrap();
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadCommitted})
    for (Strategy S : {Strategy::ApproxStrict, Strategy::ApproxRelaxed})
      EXPECT_EQ(predict(H, opts(L, S)).Result, SmtResult::Unsat)
          << toString(L) << "/" << toString(S);
}

TEST(Predict, SingleWriterMeansNoCausalPrediction) {
  // Footnote 5 (the Voter result): with a single writing transaction,
  // no causal unserializable prediction exists — but rc predictions do
  // when some session reads the writer and a later read can flip to t0.
  HistoryBuilder B(2);
  TxnId TW = B.beginTxn(0);
  B.write("v", 1);
  B.commit();
  B.beginTxn(1);
  B.read("v", TW, 1);
  B.commit();
  B.beginTxn(1);
  B.read("v", TW, 1);
  B.commit();
  History H = B.finish();

  EXPECT_EQ(
      predict(H, opts(IsolationLevel::Causal, Strategy::ApproxRelaxed)).Result,
      SmtResult::Unsat);
  Prediction P =
      predict(H, opts(IsolationLevel::ReadCommitted, Strategy::ApproxStrict));
  expectWellFormedPrediction(H, P, IsolationLevel::ReadCommitted);
}

TEST(Predict, ObservedUnserializableNeedsNoDivergence) {
  // If the observed execution is already unserializable, the boundary
  // can stay at infinity everywhere.
  History H = depositUnserializable();
  Prediction P =
      predict(H, opts(IsolationLevel::Causal, Strategy::ApproxStrict));
  ASSERT_EQ(P.Result, SmtResult::Sat);
  expectWellFormedPrediction(H, P, IsolationLevel::Causal);
}

TEST(Predict, EmptyHistoryIsUnsat) {
  HistoryBuilder B(2);
  History H = B.finish();
  EXPECT_EQ(
      predict(H, opts(IsolationLevel::Causal, Strategy::ApproxRelaxed)).Result,
      SmtResult::Unsat);
}

TEST(Predict, DisablingRwLosesTheFigure5Prediction) {
  // Ablation: Figure 5's cycle consists purely of rw edges; without them
  // the approx encoding cannot justify any cycle for the deposit
  // example.
  History H = depositObserved();
  PredictOptions O = opts(IsolationLevel::Causal, Strategy::ApproxRelaxed);
  O.EnableRw = false;
  EXPECT_EQ(predict(H, O).Result, SmtResult::Unsat);
  O.EnableRw = true;
  EXPECT_EQ(predict(H, O).Result, SmtResult::Sat);
}

TEST(Predict, StatsArePopulated) {
  History H = crossReadObserved();
  Prediction P =
      predict(H, opts(IsolationLevel::Causal, Strategy::ApproxStrict));
  EXPECT_GT(P.Stats.NumLiterals, 0u);
  EXPECT_GE(P.Stats.GenSeconds, 0.0);
  EXPECT_GE(P.Stats.SolveSeconds, 0.0);
}

//===----------------------------------------------------------------------===
// PredictSession: incremental multi-query behaviour on the canned
// histories (the golden suite sweeps the full fixture grid).
//===----------------------------------------------------------------------===

TEST(PredictSession, MatchesOneShotResultsAcrossQueries) {
  History H = crossReadObserved();
  PredictSession Session(H);
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadCommitted})
    for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                       Strategy::ApproxRelaxed}) {
      PredictSession::QueryOptions Q;
      Q.Level = L;
      Q.Strat = S;
      Q.TimeoutMs = 60000;
      Prediction Incremental = Session.query(Q);
      Prediction OneShot = predict(H, opts(L, S));
      EXPECT_EQ(Incremental.Result, OneShot.Result)
          << toString(L) << " " << toString(S);
      if (Incremental.Result == SmtResult::Sat &&
          S != Strategy::ExactStrict)
        expectWellFormedPrediction(H, Incremental, L);
    }
  EXPECT_EQ(Session.numQueries(), 6u);
}

TEST(PredictSession, BasePrefixEncodedOnceAndReused) {
  History H = crossReadObserved();
  PredictSession Session(H);
  EXPECT_FALSE(Session.baseEncoded()); // lazy: nothing until a query

  PredictSession::QueryOptions Q;
  Q.Level = IsolationLevel::Causal;
  Q.Strat = Strategy::ApproxStrict;
  Q.TimeoutMs = 60000;
  Prediction First = Session.query(Q);
  ASSERT_TRUE(Session.baseEncoded());
  uint64_t BaseLits = Session.baseLiterals();
  EXPECT_GT(BaseLits, 0u);
  EXPECT_FALSE(First.Stats.BasePrefixReused);
  EXPECT_GT(First.Stats.NumLiterals, BaseLits); // base folded in

  // The acceptance criterion made checkable: a reused query's literal
  // count excludes the declare+feasibility prefix entirely.
  Prediction Second = Session.query(Q);
  EXPECT_TRUE(Second.Stats.BasePrefixReused);
  EXPECT_EQ(Second.Result, First.Result);
  EXPECT_EQ(Second.Stats.NumLiterals, First.Stats.NumLiterals - BaseLits);
  EXPECT_EQ(Session.baseLiterals(), BaseLits); // not re-encoded

  // And the per-query pass list starts after the shared prefix.
  ASSERT_FALSE(Second.Stats.Passes.empty());
  EXPECT_EQ(Second.Stats.Passes.front().Name, "boundary-link");
  for (const PassStats &P : Second.Stats.Passes) {
    EXPECT_NE(P.Name, "declare");
    EXPECT_NE(P.Name, "feasibility");
  }
}

TEST(PredictSession, CausalFastPathSkipsTheSolver) {
  // depositObserved has two writers, so causal queries encode; a
  // single-writer history (Voter's shape) must fast-path to Unsat
  // without ever touching Z3.
  HistoryBuilder B(2);
  B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", 1, 1);
  B.commit();
  History H = B.finish();

  PredictSession Session(H);
  PredictSession::QueryOptions Q;
  Q.Level = IsolationLevel::Causal;
  Q.Strat = Strategy::ApproxRelaxed;
  EXPECT_EQ(Session.query(Q).Result, SmtResult::Unsat);
  EXPECT_EQ(Session.numQueries(), 1u);
  EXPECT_FALSE(Session.baseEncoded());
  EXPECT_EQ(predict(H, opts(IsolationLevel::Causal,
                            Strategy::ApproxRelaxed))
                .Result,
            SmtResult::Unsat);
}

TEST(PredictSession, StrategyNamesRoundTrip) {
  // The fromString parsers accept both CLI short forms and canonical
  // spellings, case-insensitively.
  EXPECT_EQ(strategyFromString("exact"), Strategy::ExactStrict);
  EXPECT_EQ(strategyFromString("Exact-Strict"), Strategy::ExactStrict);
  EXPECT_EQ(strategyFromString("strict"), Strategy::ApproxStrict);
  EXPECT_EQ(strategyFromString("relaxed"), Strategy::ApproxRelaxed);
  EXPECT_EQ(strategyFromString("APPROX-RELAXED"), Strategy::ApproxRelaxed);
  EXPECT_FALSE(strategyFromString("bogus").has_value());
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed})
    EXPECT_EQ(strategyFromString(toString(S)), S);

  EXPECT_EQ(pcoEncodingFromString("rank"), PcoEncoding::Rank);
  EXPECT_EQ(pcoEncodingFromString("Layered"), PcoEncoding::Layered);
  EXPECT_FALSE(pcoEncodingFromString("").has_value());
  for (PcoEncoding E : {PcoEncoding::Rank, PcoEncoding::Layered})
    EXPECT_EQ(pcoEncodingFromString(toString(E)), E);

  EXPECT_EQ(isolationLevelFromString("causal"), IsolationLevel::Causal);
  EXPECT_EQ(isolationLevelFromString("rc"), IsolationLevel::ReadCommitted);
  EXPECT_EQ(isolationLevelFromString("read-committed"),
            IsolationLevel::ReadCommitted);
  EXPECT_EQ(isolationLevelFromString("ra"), IsolationLevel::ReadAtomic);
  EXPECT_EQ(isolationLevelFromString("serializable"),
            IsolationLevel::Serializable);
  EXPECT_FALSE(isolationLevelFromString("snapshot").has_value());
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadAtomic,
        IsolationLevel::ReadCommitted, IsolationLevel::Serializable})
    EXPECT_EQ(isolationLevelFromString(toString(L)), L);
}

//===----------------------------------------------------------------------===
// Exact vs approximate agreement (paper §7.2: approx found every
// prediction exact found; here we check the stronger empirical property
// that their sat/unsat verdicts coincide on small histories).
//===----------------------------------------------------------------------===

namespace {
class StrategyAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};
} // namespace

TEST_P(StrategyAgreement, ExactAndApproxAgreeOnCannedHistories) {
  auto [HistIdx, LevelIdx] = GetParam();
  History H;
  switch (HistIdx) {
  case 0:
    H = depositObserved();
    break;
  case 1:
    H = crossReadObserved();
    break;
  case 2:
    H = bankDivergenceObserved();
    break;
  case 3:
    H = selfJustifyTrap();
    break;
  default:
    H = depositUnserializable();
    break;
  }
  IsolationLevel L = LevelIdx == 0 ? IsolationLevel::Causal
                                   : IsolationLevel::ReadCommitted;
  SmtResult Exact = predict(H, opts(L, Strategy::ExactStrict)).Result;
  SmtResult Approx = predict(H, opts(L, Strategy::ApproxStrict)).Result;
  ASSERT_NE(Exact, SmtResult::Unknown);
  ASSERT_NE(Approx, SmtResult::Unknown);
  EXPECT_EQ(Exact, Approx);
}

INSTANTIATE_TEST_SUITE_P(Grid, StrategyAgreement,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 2)));
