//===- smt_test.cpp - Z3 wrapper tests ------------------------*- C++ -*-===//

#include "smt/Smt.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace isopredict;

TEST(Smt, TrivialSatAndModel) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(Ctx.mkEq(X, Ctx.intVal(41)));
  Solver.add(B);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.modelInt(X), 41);
  EXPECT_TRUE(Solver.modelBool(B));
}

TEST(Smt, Contradiction) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(B);
  Solver.add(Ctx.mkNot(B));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(Smt, EmptyConnectives) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  Solver.add(Ctx.mkAnd({})); // true
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  Solver.add(Ctx.mkOr({})); // false
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(Smt, DistinctForcesDifferentValues) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  std::vector<SmtExpr> Vars;
  for (int I = 0; I < 3; ++I)
    Vars.push_back(Ctx.intVar("v" + std::to_string(I)));
  Solver.add(Ctx.mkDistinct(Vars));
  for (SmtExpr &V : Vars) {
    Solver.add(Ctx.mkLe(Ctx.intVal(0), V));
    Solver.add(Ctx.mkLe(V, Ctx.intVal(2)));
  }
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  int64_t A = Solver.modelInt(Vars[0]);
  int64_t B = Solver.modelInt(Vars[1]);
  int64_t C = Solver.modelInt(Vars[2]);
  EXPECT_NE(A, B);
  EXPECT_NE(B, C);
  EXPECT_NE(A, C);

  // Four distinct values in [0,2] is impossible.
  Vars.push_back(Ctx.intVar("v3"));
  Solver.add(Ctx.mkLe(Ctx.intVal(0), Vars[3]));
  Solver.add(Ctx.mkLe(Vars[3], Ctx.intVal(2)));
  Solver.add(Ctx.mkDistinct(Vars));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(Smt, ImpliesAndIff) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr A = Ctx.boolVar("a");
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(Ctx.mkImplies(A, B));
  Solver.add(A);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_TRUE(Solver.modelBool(B));

  Solver.add(Ctx.mkIff(B, Ctx.boolVal(false)));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(Smt, ForallRefutesExistentialClaim) {
  // ∀x. x != 5 is unsat over integers... as an assertion it means the
  // formula is false for x == 5.
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  Solver.add(Ctx.mkForall({X}, Ctx.mkNot(Ctx.mkEq(X, Ctx.intVal(5)))));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(Smt, ForallTautologyIsSat) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  Solver.add(Ctx.mkForall({X}, Ctx.mkOr({Ctx.mkLe(X, Ctx.intVal(0)),
                                         Ctx.mkLe(Ctx.intVal(0), X)})));
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
}

TEST(Smt, ResultFromStringRoundTrips) {
  for (SmtResult R :
       {SmtResult::Sat, SmtResult::Unsat, SmtResult::Unknown})
    EXPECT_EQ(smtResultFromString(toString(R)), R);
  EXPECT_FALSE(smtResultFromString("maybe").has_value());
  EXPECT_FALSE(smtResultFromString("").has_value());
}

TEST(Smt, LiteralCounting) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr A = Ctx.boolVar("a");
  SmtExpr B = Ctx.boolVar("b");
  uint64_t Before = Ctx.literalCount();
  Solver.add(Ctx.mkOr({A, B, Ctx.mkNot(A)}));
  EXPECT_EQ(Ctx.literalCount() - Before, 3u);
  Solver.add(Ctx.mkLt(Ctx.intVar("x"), Ctx.intVal(3)));
  EXPECT_EQ(Ctx.literalCount() - Before, 4u);
}

TEST(Smt, ModelInvalidatedByAdd) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  Solver.add(Ctx.mkLe(Ctx.intVal(10), X));
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  // Adding a tighter constraint and re-checking refreshes the model.
  Solver.add(Ctx.mkLe(X, Ctx.intVal(10)));
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.modelInt(X), 10);
}

TEST(Smt, PushPopDiscardsScopedAssertions) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(B);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);

  EXPECT_EQ(Solver.scopeDepth(), 0u);
  Solver.push();
  EXPECT_EQ(Solver.scopeDepth(), 1u);
  Solver.add(Ctx.mkNot(B));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
  Solver.pop();
  EXPECT_EQ(Solver.scopeDepth(), 0u);

  // The scoped contradiction vanished; the root assertion survives.
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_TRUE(Solver.modelBool(B));
}

TEST(Smt, NestedScopesBacktrackIndependently) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  Solver.add(Ctx.mkLe(Ctx.intVal(0), X));

  Solver.push();
  Solver.add(Ctx.mkLe(X, Ctx.intVal(10)));
  Solver.push();
  Solver.add(Ctx.mkLe(Ctx.intVal(20), X)); // contradicts x <= 10
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
  Solver.pop();
  ASSERT_EQ(Solver.check(), SmtResult::Sat); // x in [0, 10] again
  EXPECT_LE(Solver.modelInt(X), 10);
  Solver.pop();

  Solver.add(Ctx.mkLe(Ctx.intVal(20), X)); // fine at the root now
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_GE(Solver.modelInt(X), 20);
}

TEST(Smt, LiteralCountRewindsAcrossPop) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr A = Ctx.boolVar("a");
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(A);
  uint64_t Root = Ctx.literalCount();
  EXPECT_EQ(Root, 1u);

  Solver.push();
  Solver.add(Ctx.mkOr({A, B, Ctx.mkNot(A)})); // 3 literals
  EXPECT_EQ(Ctx.literalCount(), Root + 3);
  Solver.push();
  Solver.add(B);
  EXPECT_EQ(Ctx.literalCount(), Root + 4);
  Solver.pop();
  EXPECT_EQ(Ctx.literalCount(), Root + 3);
  Solver.pop();
  EXPECT_EQ(Ctx.literalCount(), Root);

  // A fresh scope accumulates from the rewound count, so literalCount
  // always equals "literals currently on the solver".
  Solver.push();
  Solver.add(Ctx.mkAnd(A, B));
  EXPECT_EQ(Ctx.literalCount(), Root + 2);
  Solver.pop();
  EXPECT_EQ(Ctx.literalCount(), Root);
}

TEST(Smt, InternedAtomsSurvivePop) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr X = Ctx.intVar("x");
  SmtExpr Atom = Ctx.internEq(X, Ctx.internIntVal(3));

  Solver.push();
  // Same atom inside the scope: pointer-identical (cache hit).
  SmtExpr Scoped = Ctx.internEq(X, Ctx.internIntVal(3));
  EXPECT_EQ(Atom.Ast, Scoped.Ast);
  Solver.add(Scoped);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  Solver.pop();

  // After the pop, the intern tables still hand back the same valid
  // AST (the legacy context owns terms until destruction), and it is
  // still usable in new assertions.
  uint64_t HitsBefore = Ctx.internHits();
  SmtExpr After = Ctx.internEq(X, Ctx.internIntVal(3));
  EXPECT_EQ(Atom.Ast, After.Ast);
  EXPECT_GT(Ctx.internHits(), HitsBefore);
  Solver.add(After);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.modelInt(X), 3);
}

TEST(Smt, TimeoutReturnsUnknownOrAnswer) {
  // A hard pigeonhole-ish instance with a 1ms timeout: the solver must
  // come back quickly with Unknown (or solve it, which is also fine).
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  const int N = 9;
  std::vector<SmtExpr> Vars;
  for (int I = 0; I < N * N; ++I)
    Vars.push_back(Ctx.intVar("p" + std::to_string(I)));
  for (SmtExpr &V : Vars) {
    Solver.add(Ctx.mkLe(Ctx.intVal(0), V));
    Solver.add(Ctx.mkLe(V, Ctx.intVal(N - 2)));
  }
  Solver.add(Ctx.mkDistinct(Vars));
  Solver.setTimeoutMs(1);
  SmtResult R = Solver.check();
  EXPECT_TRUE(R == SmtResult::Unknown || R == SmtResult::Unsat);
}

TEST(Smt, InterruptUnderLoadCancelsRunningCheck) {
  // Same hard pigeonhole-ish instance as the timeout test, but no
  // timeout: a second thread interrupts the running check. The check
  // must come back — Unknown if the interrupt landed first, Unsat if Z3
  // finished before it — and the sticky flag must classify the Unknown
  // as a cancellation, not a timeout.
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  const int N = 9;
  std::vector<SmtExpr> Vars;
  for (int I = 0; I < N * N; ++I)
    Vars.push_back(Ctx.intVar("p" + std::to_string(I)));
  for (SmtExpr &V : Vars) {
    Solver.add(Ctx.mkLe(Ctx.intVal(0), V));
    Solver.add(Ctx.mkLe(V, Ctx.intVal(N - 2)));
  }
  Solver.add(Ctx.mkDistinct(Vars));

  std::thread Killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Solver.interrupt();
  });
  SmtResult R = Solver.check();
  Killer.join();

  EXPECT_TRUE(R == SmtResult::Unknown || R == SmtResult::Unsat);
  EXPECT_TRUE(Solver.interrupted());
  // Z3's reason string for a mid-check interrupt varies by version
  // ("canceled" / "interrupted") — which is exactly why callers must
  // classify through interrupted(), never the string.
  if (R == SmtResult::Unknown)
    EXPECT_TRUE(Solver.reasonUnknown() == "canceled" ||
                Solver.reasonUnknown() == "interrupted")
        << Solver.reasonUnknown();

  // Sticky: every future check on this solver is canceled up front
  // (the pre-check path never enters Z3 and stamps its own reason).
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.reasonUnknown(), "canceled");
}

TEST(Smt, InterruptBeforeCheckCancelsWithoutEnteringZ3) {
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  SmtExpr B = Ctx.boolVar("b");
  Solver.add(B); // trivially sat — only the interrupt can make it Unknown
  Solver.interrupt();
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.reasonUnknown(), "canceled");
  EXPECT_TRUE(Solver.interrupted());
  // Repeated interrupts are fine (idempotent), from any thread.
  Solver.interrupt();
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
}

TEST(Smt, SetOptionAcceptsLanePresetParameters) {
  // The portfolio lane presets (src/portfolio/Portfolio.cpp) stand on
  // these parameter names existing in Z3's solver descriptor set — an
  // unknown name is a fatal Z3 error, so this would crash, not fail.
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  Solver.setOption("arith.solver", "2");
  Solver.setOption("random_seed", "7");
  Solver.setOption("sat.random_seed", "7");
  Solver.setOption("relevancy", "0");
  Solver.setOption("phase_selection", "5");
  Solver.setOption("restart_strategy", "1");

  // The knobs are heuristic only: outcomes are unchanged.
  SmtExpr X = Ctx.intVar("x");
  Solver.add(Ctx.mkEq(X, Ctx.intVal(41)));
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.modelInt(X), 41);
  Solver.add(Ctx.mkNot(Ctx.mkEq(X, Ctx.intVal(41))));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}
