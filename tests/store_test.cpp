//===- store_test.cpp - Data store tests ----------------------*- C++ -*-===//

#include "store/Store.h"

#include "checker/Checkers.h"
#include <gtest/gtest.h>

using namespace isopredict;

namespace {

DataStore::Options serialOpts() {
  DataStore::Options O;
  O.Mode = StoreMode::SerialObserved;
  O.Level = IsolationLevel::Serializable;
  return O;
}

DataStore::Options weakOpts(IsolationLevel L, uint64_t Seed) {
  DataStore::Options O;
  O.Mode = StoreMode::RandomWeak;
  O.Level = L;
  O.Seed = Seed;
  return O;
}

} // namespace

TEST(Store, SerialModeReadsLatestCommitted) {
  DataStore Store(serialOpts());
  Store.setInitial("x", 7);
  SessionId A = Store.openSession();
  SessionId B = Store.openSession();

  Store.beginTxn(A, 0);
  EXPECT_EQ(Store.get(A, "x").Val, 7);
  Store.put(A, "x", 10);
  EXPECT_EQ(Store.get(A, "x").Val, 10) << "read-own-write";
  Store.commitTxn(A);

  Store.beginTxn(B, 0);
  EXPECT_EQ(Store.get(B, "x").Val, 10);
  Store.commitTxn(B);

  History H = Store.history();
  EXPECT_EQ(H.numTxns(), 3u);
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Serializable);
  // The read-own-write produced no event (§2.1).
  EXPECT_EQ(H.txn(1).Events.size(), 2u);
}

TEST(Store, RollbackDiscardsEverything) {
  DataStore Store(serialOpts());
  SessionId A = Store.openSession();
  Store.beginTxn(A, 0);
  Store.put(A, "x", 5);
  Store.rollbackTxn(A);

  Store.beginTxn(A, 1);
  EXPECT_EQ(Store.get(A, "x").Val, 0) << "aborted write must not be visible";
  Store.commitTxn(A);

  History H = Store.history();
  EXPECT_EQ(H.numTxns(), 2u) << "aborted txns are not part of the history";
  EXPECT_FALSE(Store.txnForSlot(A, 0).has_value());
  EXPECT_TRUE(Store.txnForSlot(A, 1).has_value());
}

TEST(Store, OnlyLastWritePerKeyIsAnEvent) {
  DataStore Store(serialOpts());
  SessionId A = Store.openSession();
  Store.beginTxn(A, 0);
  Store.put(A, "x", 1);
  Store.put(A, "x", 2);
  Store.put(A, "y", 3);
  Store.commitTxn(A);
  History H = Store.history();
  ASSERT_EQ(H.txn(1).Events.size(), 2u);
  // The surviving write to x carries the last value.
  for (const Event &E : H.txn(1).Events)
    if (H.keys().name(E.Key) == "x") {
      EXPECT_EQ(E.Val, 2);
    }
}

TEST(Store, SlotMappingSurvivesAborts) {
  DataStore Store(serialOpts());
  SessionId A = Store.openSession();
  Store.beginTxn(A, 0);
  Store.put(A, "x", 1);
  Store.commitTxn(A);
  Store.beginTxn(A, 1);
  Store.rollbackTxn(A);
  Store.beginTxn(A, 2);
  Store.put(A, "x", 2);
  Store.commitTxn(A);

  EXPECT_EQ(Store.txnForSlot(A, 0), std::optional<TxnId>(1));
  EXPECT_EQ(Store.txnForSlot(A, 2), std::optional<TxnId>(2));
  EXPECT_EQ(Store.history().txn(2).Slot, 2u);
}

namespace {

/// Drives a contended two-session workload against a weak store and
/// returns the history.
History runWeakScenario(IsolationLevel L, uint64_t Seed) {
  DataStore Store(weakOpts(L, Seed));
  Store.setInitial("x", 0);
  Store.setInitial("y", 0);
  SessionId A = Store.openSession();
  SessionId B = Store.openSession();

  Store.beginTxn(A, 0);
  Store.get(A, "x");
  Store.put(A, "x", 1);
  Store.put(A, "y", 1);
  Store.commitTxn(A);

  Store.beginTxn(B, 0);
  Store.get(B, "x");
  Store.put(B, "x", 2);
  Store.commitTxn(B);

  Store.beginTxn(A, 1);
  Store.get(A, "y");
  Store.get(A, "x");
  Store.commitTxn(A);

  Store.beginTxn(B, 1);
  Store.get(B, "x");
  Store.get(B, "y");
  Store.get(B, "x");
  Store.commitTxn(B);

  return Store.history();
}

class WeakStoreTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(WeakStoreTest, RandomCausalRunsAreCausal) {
  History H = runWeakScenario(IsolationLevel::Causal, GetParam());
  EXPECT_TRUE(isCausal(H)) << "seed " << GetParam();
}

TEST_P(WeakStoreTest, RandomRcRunsAreRc) {
  History H = runWeakScenario(IsolationLevel::ReadCommitted, GetParam());
  EXPECT_TRUE(isReadCommitted(H)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakStoreTest,
                         ::testing::Range<uint64_t>(1, 33));

TEST(Store, CausalForbidsReadingInitialAfterSessionSawWrite) {
  // Once a session observed t1's write to x, a later read of x cannot
  // legally return t0 under causal; under rc it can.
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadCommitted}) {
    bool SawInit = false;
    for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
      DataStore Store(weakOpts(L, Seed));
      Store.setInitial("x", 0);
      SessionId A = Store.openSession();
      SessionId B = Store.openSession();
      Store.beginTxn(A, 0);
      Store.put(A, "x", 1);
      Store.commitTxn(A);
      // Force B's first read to observe t1: rebuild until it does.
      Store.beginTxn(B, 0);
      Value First = Store.get(B, "x").Val;
      Store.commitTxn(B);
      if (First != 1)
        continue;
      Store.beginTxn(B, 1);
      Value Second = Store.get(B, "x").Val;
      Store.commitTxn(B);
      if (Second == 0)
        SawInit = true;
      EXPECT_TRUE(satisfiesLevel(Store.history(), L));
    }
    if (L == IsolationLevel::Causal)
      EXPECT_FALSE(SawInit) << "causal must keep session reads monotonic";
    else
      EXPECT_TRUE(SawInit) << "rc should sometimes read stale data";
  }
}

TEST(Store, ControlledReplayFollowsDirector) {
  struct FixedDirector : ReadDirector {
    TxnId Target;
    Directive preferredWriter(SessionId, uint32_t, uint32_t,
                              const std::string &) override {
      return {Target, true};
    }
  };

  DataStore::Options O;
  O.Mode = StoreMode::ControlledReplay;
  O.Level = IsolationLevel::Causal;
  DataStore Store(O);
  Store.setInitial("x", 0);
  FixedDirector Dir;
  Store.setDirector(&Dir);
  SessionId A = Store.openSession();
  SessionId B = Store.openSession();

  Store.beginTxn(A, 0);
  Store.put(A, "x", 42);
  Store.commitTxn(A);

  // Direct B to read the initial state even though t1 committed.
  Dir.Target = InitTxn;
  Store.beginTxn(B, 0);
  EXPECT_EQ(Store.get(B, "x").Val, 0);
  Store.commitTxn(B);
  EXPECT_EQ(Store.divergenceCount(), 0u);

  // Direct B to read t1.
  Dir.Target = 1;
  Store.beginTxn(B, 1);
  EXPECT_EQ(Store.get(B, "x").Val, 42);
  Store.commitTxn(B);
  EXPECT_EQ(Store.divergenceCount(), 0u);

  // Now the initial state is illegal for B under causal: divergence.
  Dir.Target = InitTxn;
  Store.beginTxn(B, 2);
  EXPECT_EQ(Store.get(B, "x").Val, 42);
  Store.commitTxn(B);
  EXPECT_EQ(Store.divergenceCount(), 1u);

  EXPECT_TRUE(isCausal(Store.history()));
}

TEST(Store, LockingModeBlocksAndReleases) {
  DataStore::Options O;
  O.Mode = StoreMode::LockingRc;
  DataStore Store(O);
  Store.setInitial("x", 0);
  SessionId A = Store.openSession();
  SessionId B = Store.openSession();

  Store.beginTxn(A, 0);
  EXPECT_EQ(Store.getForUpdate(A, "x").Status, DataStore::OpStatus::Ok);

  Store.beginTxn(B, 0);
  EXPECT_EQ(Store.getForUpdate(B, "x").Status,
            DataStore::OpStatus::WouldBlock);
  EXPECT_EQ(Store.blockedOn(B), std::optional<std::string>("x"));
  EXPECT_EQ(Store.lockOwnerOfBlockedKey(B), std::optional<SessionId>(A));

  // Plain reads do not block (read committed).
  EXPECT_EQ(Store.get(B, "x").Status, DataStore::OpStatus::Ok);

  Store.put(A, "x", 9);
  Store.commitTxn(A);
  EXPECT_EQ(Store.getForUpdate(B, "x").Status, DataStore::OpStatus::Ok);
  EXPECT_EQ(Store.getForUpdate(B, "x").Val, 9)
      << "after the lock is released the latest committed value is read";
  Store.commitTxn(B);
}
