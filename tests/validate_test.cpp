//===- validate_test.cpp - Validation component tests ---------*- C++ -*-===//

#include "validate/Validate.h"

#include <gtest/gtest.h>

using namespace isopredict;

namespace {

/// The Figure 9 application: one session deposits, another withdraws and
/// deposits. Withdraw aborts on insufficient funds — the divergence that
/// motivates the prediction boundary.
class BankApp : public Application {
public:
  std::string name() const override { return "bank"; }

  void setup(DataStore &Store, const WorkloadConfig &Cfg) override {
    (void)Cfg;
    Store.setInitial("acct", 0);
  }

  std::vector<SessionScript> makeScripts(const WorkloadConfig &Cfg) override {
    (void)Cfg;
    auto Deposit = [](Value Amt) {
      return [Amt](TxnCtx &Ctx) {
        Value V = Ctx.get("acct");
        Ctx.put("acct", V + Amt);
      };
    };
    auto Withdraw = [](Value Amt) {
      return [Amt](TxnCtx &Ctx) {
        Value V = Ctx.get("acct");
        if (V < Amt) {
          Ctx.abort();
          return;
        }
        Ctx.put("acct", V - Amt);
      };
    };
    std::vector<SessionScript> Scripts(2);
    Scripts[0].Txns = {Deposit(60)};
    Scripts[1].Txns = {Withdraw(50), Deposit(5)};
    return Scripts;
  }
};

/// The Figure 8 application: each session writes its key, then reads the
/// other session's key. No control flow depends on the reads, so
/// predictions validate without divergence.
class CrossReadApp : public Application {
public:
  std::string name() const override { return "crossread"; }

  void setup(DataStore &Store, const WorkloadConfig &Cfg) override {
    (void)Cfg;
    Store.setInitial("x", 0);
    Store.setInitial("y", 0);
  }

  std::vector<SessionScript> makeScripts(const WorkloadConfig &Cfg) override {
    (void)Cfg;
    std::vector<SessionScript> Scripts(2);
    Scripts[0].Txns = {[](TxnCtx &Ctx) { Ctx.put("x", 1); },
                       [](TxnCtx &Ctx) { Ctx.get("y"); }};
    Scripts[1].Txns = {[](TxnCtx &Ctx) { Ctx.put("y", 1); },
                       [](TxnCtx &Ctx) { Ctx.get("x"); }};
    return Scripts;
  }
};

History observe(Application &App, const WorkloadConfig &Cfg,
                const std::vector<std::pair<SessionId, uint32_t>> &Order) {
  DataStore::Options O;
  O.Mode = StoreMode::SerialObserved;
  O.Level = IsolationLevel::Serializable;
  O.Seed = Cfg.Seed;
  DataStore Store(O);
  return WorkloadRunner::replay(App, Store, Cfg, Order).Hist;
}

PredictOptions opts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  O.TimeoutMs = 60000;
  return O;
}

} // namespace

TEST(Validate, CrossReadPredictionValidatesWithoutDivergence) {
  CrossReadApp App;
  WorkloadConfig Cfg{2, 2, 1};
  History Observed =
      observe(App, Cfg, {{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  ASSERT_EQ(checkSerializableSmt(Observed), SerResult::Serializable);

  Prediction P =
      predict(Observed, opts(IsolationLevel::Causal, Strategy::ApproxStrict));
  ASSERT_EQ(P.Result, SmtResult::Sat);

  ValidationResult V = validatePrediction(App, Cfg, Observed, P,
                                          IsolationLevel::Causal, 60000);
  EXPECT_EQ(V.St, ValidationResult::Status::ValidatedUnserializable);
  EXPECT_FALSE(V.Diverged);
  EXPECT_TRUE(isCausal(V.Validating))
      << "the validating execution must conform to the isolation level";
}

TEST(Validate, BankDivergentAbortYieldsSerializableExecution) {
  // The paper's Figure 9 story: the relaxed prediction makes the
  // withdraw read the empty initial balance; on replay it aborts, the
  // execution diverges, and the validating execution is serializable —
  // a false prediction caught by validation.
  BankApp App;
  WorkloadConfig Cfg{2, 2, 1};
  History Observed = observe(App, Cfg, {{0, 0}, {1, 0}, {1, 1}});
  ASSERT_EQ(Observed.numTxns(), 4u);
  ASSERT_EQ(checkSerializableSmt(Observed), SerResult::Serializable);

  Prediction P = predict(Observed,
                         opts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  ASSERT_EQ(P.Result, SmtResult::Sat);

  ValidationResult V = validatePrediction(App, Cfg, Observed, P,
                                          IsolationLevel::Causal, 60000);
  EXPECT_EQ(V.St, ValidationResult::Status::Serializable);
  EXPECT_TRUE(V.Diverged);
  EXPECT_TRUE(isCausal(V.Validating));
}

TEST(Validate, NoPredictionPassesThrough) {
  CrossReadApp App;
  WorkloadConfig Cfg{2, 2, 1};
  History Observed =
      observe(App, Cfg, {{0, 0}, {1, 0}, {0, 1}, {1, 1}});
  Prediction P;
  P.Result = SmtResult::Unsat;
  ValidationResult V = validatePrediction(App, Cfg, Observed, P,
                                          IsolationLevel::Causal, 60000);
  EXPECT_EQ(V.St, ValidationResult::Status::NoPrediction);
}

TEST(Validate, ValidatingExecutionStopsAtTheBoundary) {
  // Only boundary transactions and their hb-predecessors replay (§5):
  // in the bank scenario the excluded trailing deposit must not appear.
  BankApp App;
  WorkloadConfig Cfg{2, 2, 1};
  History Observed = observe(App, Cfg, {{0, 0}, {1, 0}, {1, 1}});
  Prediction P = predict(Observed,
                         opts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  ASSERT_EQ(P.Result, SmtResult::Sat);
  ValidationResult V = validatePrediction(App, Cfg, Observed, P,
                                          IsolationLevel::Causal, 60000);
  // Committed validating txns + aborts <= scheduled txns < observed.
  EXPECT_LT(V.Validating.numTxns(), Observed.numTxns());
}
