//===- TestUtil.h - Shared test fixtures ----------------------*- C++ -*-===//
//
// Part of the IsoPredict reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canned execution histories used across the test binaries: the paper's
/// running examples (Figures 1-3, 5/8, 9) plus helpers for generating
/// random histories through the store.
///
//===----------------------------------------------------------------------===//

#ifndef ISOPREDICT_TESTS_TESTUTIL_H
#define ISOPREDICT_TESTS_TESTUTIL_H

#include "history/History.h"

namespace isopredict {
namespace testutil {

/// Figure 2a: the serializable deposit execution. Two sessions deposit
/// into the same account; t2 reads t1's write.
///   t1: read(acct)<-t0, write(acct);  t2: read(acct)<-t1, write(acct)
inline History depositObserved() {
  HistoryBuilder B(2);
  B.beginTxn(0);
  B.read("acct", InitTxn, 0);
  B.write("acct", 50);
  B.commit();
  B.beginTxn(1);
  B.read("acct", 1, 50);
  B.write("acct", 110);
  B.commit();
  return B.finish();
}

/// Figure 3a: the causal-but-unserializable deposit execution — both
/// transactions read the initial balance.
inline History depositUnserializable() {
  HistoryBuilder B(2);
  B.beginTxn(0);
  B.read("acct", InitTxn, 0);
  B.write("acct", 50);
  B.commit();
  B.beginTxn(1);
  B.read("acct", InitTxn, 0);
  B.write("acct", 60);
  B.commit();
  return B.finish();
}

/// Figure 8a (Smallbank shape): two sessions, each writing one key and
/// then reading the other session's key. Serializable as observed; under
/// causal an unserializable prediction exists with both reads flipped to
/// t0 — and it needs no events beyond the divergent reads, so even the
/// strict boundary finds it.
///   s0: t1 write(x); t3 read(y)<-t2
///   s1: t2 write(y); t4 read(x)<-t1
inline History crossReadObserved() {
  HistoryBuilder B(2);
  TxnId T1, T2;
  T1 = B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  T2 = B.beginTxn(1);
  B.write("y", 1);
  B.commit();
  B.beginTxn(0);
  B.read("y", T2, 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", T1, 1);
  B.commit();
  return B.finish();
}

/// Figure 9b: deposit(60) in one session; withdraw(50) then deposit(5)
/// in another, reading each other's writes in sequence. Serializable.
///   s0: t1 read(acct)<-t0, write(acct)
///   s1: t2 read(acct)<-t1, write(acct);  t3 read(acct)<-t2, write(acct)
inline History bankDivergenceObserved() {
  HistoryBuilder B(2);
  TxnId T1, T2;
  T1 = B.beginTxn(0);
  B.read("acct", InitTxn, 0);
  B.write("acct", 60);
  B.commit();
  T2 = B.beginTxn(1);
  B.read("acct", T1, 60);
  B.write("acct", 10);
  B.commit();
  B.beginTxn(1);
  B.read("acct", T2, 10);
  B.write("acct", 15);
  B.commit();
  return B.finish();
}

/// Figure 6 shape: two writers of k and an independent reader. Every
/// feasible execution is serializable; a sound encoder must not invent a
/// self-justifying ww/pco cycle (the rank mechanism's job).
inline History selfJustifyTrap() {
  HistoryBuilder B(3);
  B.beginTxn(0);
  B.write("k", 1);
  B.commit();
  B.beginTxn(1);
  B.write("k", 2);
  B.commit();
  B.beginTxn(2);
  B.read("k", 2, 2);
  B.commit();
  return B.finish();
}

} // namespace testutil
} // namespace isopredict

#endif // ISOPREDICT_TESTS_TESTUTIL_H
