//===- encode_test.cpp - Encoding-pipeline layer tests --------*- C++ -*-===//

#include "encode/EncodingContext.h"
#include "encode/Passes.h"
#include "encode/Pipeline.h"
#include "engine/ReportDiff.h"
#include "history/BitRel.h"
#include "predict/Predict.h"
#include "support/Rng.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

namespace {

PredictOptions opts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  O.TimeoutMs = 60000;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Transitive closure by repeated squaring
//===----------------------------------------------------------------------===

TEST(Encode, ClosureBySquaringMatchesNaiveClosure) {
  // Fix the base relation as boolean constants; the closure variables'
  // model values must equal the word-parallel Warshall closure.
  Rng Rand(42);
  for (size_t N : {2, 3, 5, 9, 12}) {
    for (int Round = 0; Round < 3; ++Round) {
      BitRel R(N);
      for (size_t I = 0; I < 2 * N; ++I)
        R.set(Rand.below(N), Rand.below(N));

      SmtContext Ctx;
      SmtSolver Solver(Ctx);
      encode::AssertionBuffer Asserts(Solver);
      encode::PairMatrix Base(N, std::vector<SmtExpr>(N));
      for (size_t A = 0; A < N; ++A)
        for (size_t B = 0; B < N; ++B)
          if (A != B)
            Base[A][B] = Ctx.boolVal(R.test(A, B));
      encode::PairMatrix Closed =
          encode::defineClosure(Ctx, Asserts, Base, "t");
      Asserts.flush();

      BitRel Expect = R;
      // Warshall produces reflexive pairs only on cycles; the squaring
      // closure never defines diagonal entries, so compare off-diagonal.
      Expect.closeTransitively();

      ASSERT_EQ(Solver.check(), SmtResult::Sat);
      for (size_t A = 0; A < N; ++A)
        for (size_t B = 0; B < N; ++B) {
          if (A == B)
            continue;
          EXPECT_EQ(Solver.modelBool(Closed[A][B]), Expect.test(A, B))
              << "N=" << N << " edge " << A << "->" << B;
        }
    }
  }
}

//===----------------------------------------------------------------------===
// Atom interning
//===----------------------------------------------------------------------===

TEST(Encode, SmtContextInterningReturnsIdenticalAsts) {
  SmtContext Ctx;
  SmtExpr X = Ctx.intVar("x");
  SmtExpr Y = Ctx.intVar("y");

  SmtExpr Five1 = Ctx.internIntVal(5);
  SmtExpr Five2 = Ctx.internIntVal(5);
  EXPECT_EQ(Five1.Ast, Five2.Ast);

  SmtExpr Lt1 = Ctx.internLt(X, Y);
  SmtExpr Lt2 = Ctx.internLt(X, Y);
  EXPECT_EQ(Lt1.Ast, Lt2.Ast);
  EXPECT_EQ(Lt1.Lits, Lt2.Lits);

  // Distinct operators over the same operands are distinct atoms.
  EXPECT_NE(Ctx.internLt(X, Y).Ast, Ctx.internLe(X, Y).Ast);
  EXPECT_NE(Ctx.internEq(X, Y).Ast, Ctx.internLe(X, Y).Ast);

  // The cache observed the repeats.
  EXPECT_GT(Ctx.internHits(), 0u);
  EXPECT_GT(Ctx.internLookups(), Ctx.internHits());

  // Interned and plain construction agree (Z3 hash-conses ASTs).
  EXPECT_EQ(Ctx.internLt(X, Y).Ast, Ctx.mkLt(X, Y).Ast);
}

TEST(Encode, ContextAtomsAreInterned) {
  History H = depositObserved();
  PredictOptions O = opts(IsolationLevel::Causal, Strategy::ApproxRelaxed);
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  encode::EncodingContext EC(H, O, Ctx, Solver);
  encode::DeclarePass().run(EC);

  SessionId S = H.txn(1).Session;
  uint32_t Pos = H.txn(1).Events.at(0).Pos;

  EXPECT_EQ(EC.choiceIs(S, Pos, InitTxn).Ast,
            EC.choiceIs(S, Pos, InitTxn).Ast);
  EXPECT_EQ(EC.eventIncluded(S, Pos).Ast, EC.eventIncluded(S, Pos).Ast);
  EXPECT_EQ(EC.beforeBoundary(S, Pos).Ast, EC.beforeBoundary(S, Pos).Ast);

  KeyId K = H.keysRead().at(0);
  ASSERT_TRUE(H.writesKey(1, K));
  EXPECT_EQ(EC.writeIncluded(1, K).Ast, EC.writeIncluded(1, K).Ast);
}

//===----------------------------------------------------------------------===
// Per-pass accounting
//===----------------------------------------------------------------------===

TEST(Encode, PassLiteralsSumToTotal) {
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed})
    for (IsolationLevel L :
         {IsolationLevel::Causal, IsolationLevel::ReadAtomic,
          IsolationLevel::ReadCommitted}) {
      History H = crossReadObserved();
      PredictOptions O = opts(L, S);
      O.GenerateOnly = true;
      Prediction P = predict(H, O);

      ASSERT_EQ(P.Stats.Passes.size(), 4u) << toString(S);
      EXPECT_EQ(P.Stats.Passes[0].Name, "declare");
      EXPECT_EQ(P.Stats.Passes[0].Literals, 0u)
          << "declaration asserts nothing";
      EXPECT_EQ(P.Stats.Passes[1].Name, "feasibility");

      uint64_t Sum = 0;
      for (const PassStats &PS : P.Stats.Passes) {
        EXPECT_GE(PS.Seconds, 0.0);
        Sum += PS.Literals;
      }
      EXPECT_EQ(Sum, P.Stats.NumLiterals)
          << toString(S) << "/" << toString(L);
    }
}

TEST(Encode, PipelineSelectsPassesFromOptions) {
  PredictOptions O = opts(IsolationLevel::ReadCommitted,
                          Strategy::ApproxStrict);
  O.GenerateOnly = true;
  Prediction P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "approx-rank");
  EXPECT_EQ(P.Stats.Passes[3].Name, "read-committed");

  O.Pco = PcoEncoding::Layered;
  P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "approx-layered");

  O.Strat = Strategy::ExactStrict;
  O.Level = IsolationLevel::Causal;
  P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "exact-strict");
  EXPECT_EQ(P.Stats.Passes[3].Name, "causal");
}

//===----------------------------------------------------------------------===
// Batched assertion (the ablation knob)
//===----------------------------------------------------------------------===

TEST(Encode, BatchedAssertsKeepLiteralsAndVerdict) {
  for (int HistIdx = 0; HistIdx < 3; ++HistIdx) {
    History H = HistIdx == 0   ? depositObserved()
                : HistIdx == 1 ? crossReadObserved()
                               : selfJustifyTrap();
    PredictOptions O = opts(IsolationLevel::Causal, Strategy::ApproxStrict);
    Prediction Plain = predict(H, O);
    O.BatchAsserts = true;
    Prediction Batched = predict(H, O);
    EXPECT_EQ(Plain.Result, Batched.Result);
    EXPECT_EQ(Plain.Stats.NumLiterals, Batched.Stats.NumLiterals);
  }
}

TEST(Encode, AddAllAccountsLiteralsLikeAdd) {
  SmtContext C1, C2;
  auto build = [](SmtContext &Ctx) {
    std::vector<SmtExpr> Es;
    SmtExpr X = Ctx.intVar("x");
    Es.push_back(Ctx.mkLt(Ctx.intVal(0), X));
    Es.push_back(Ctx.mkOr({Ctx.boolVar("a"), Ctx.boolVar("b")}));
    Es.push_back(Ctx.mkEq(X, Ctx.intVal(7)));
    return Es;
  };
  SmtSolver S1(C1), S2(C2);
  for (SmtExpr E : build(C1))
    S1.add(E);
  S2.addAll(build(C2));
  EXPECT_EQ(C1.literalCount(), C2.literalCount());
  EXPECT_EQ(S1.check(), S2.check());
}

//===----------------------------------------------------------------------===
// Report diffing (the regression-gate tool)
//===----------------------------------------------------------------------===

namespace {

std::string jobJson(const char *Seed, const char *Result, const char *Val) {
  return std::string("{\"kind\": \"predict\", \"app\": \"smallbank\", "
                     "\"workload\": \"3x4\", \"seed\": ") +
         Seed + ", \"level\": \"causal\", \"strategy\": \"Approx-Relaxed\", "
                "\"pco\": \"rank\", \"ok\": true, \"result\": \"" +
         Result + "\", \"validation\": \"" + Val + "\"}";
}

std::string reportJson(const std::vector<std::string> &Jobs) {
  std::string Out = "{\"schema\": \"isopredict-campaign-report/1\", "
                    "\"campaign\": \"t\", \"jobs\": [";
  for (size_t I = 0; I < Jobs.size(); ++I)
    Out += (I ? ", " : "") + Jobs[I];
  return Out + "]}";
}

} // namespace

TEST(ReportDiff, FlagsOutcomeRegressions) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string B = reportJson({jobJson("1", "unsat", "no-prediction"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string Error;
  auto D = diffReports(A, B, &Error);
  ASSERT_TRUE(D.has_value()) << Error;
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->hasRegressions());
  EXPECT_EQ(D->numRegressions(), 2u); // result + validation on seed 1.

  // The reverse direction is a change, not a regression.
  auto Rev = diffReports(B, A, &Error);
  ASSERT_TRUE(Rev.has_value()) << Error;
  EXPECT_FALSE(Rev->hasRegressions());
  EXPECT_EQ(Rev->Deltas.size(), 2u);
}

TEST(ReportDiff, MatchesJobsByIdentityNotOrder) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string B = reportJson({jobJson("2", "unsat", "no-prediction"),
                              jobJson("1", "sat",
                                      "validated-unserializable")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->Deltas.empty());
  EXPECT_TRUE(D->OnlyInA.empty());
  EXPECT_TRUE(D->OnlyInB.empty());
}

TEST(ReportDiff, RejectsNonReports) {
  using namespace isopredict::engine;
  std::string Error;
  EXPECT_FALSE(diffReports("not json", "{}", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(diffReports("{\"jobs\": 3}", "{\"jobs\": []}", &Error)
                   .has_value());
}

TEST(ReportDiff, MatchesBySpecHashWhenBothReportsCarryIt) {
  using namespace isopredict::engine;
  auto hashed = [](const char *Hash, const char *Seed, const char *Result) {
    return std::string("{\"spec_hash\": \"") + Hash + "\", " +
           jobJson(Seed, Result, "no-prediction").substr(1);
  };
  // Reordered jobs match by hash, independent of position.
  std::string A = reportJson({hashed("00000000000000aa", "1", "sat"),
                              hashed("00000000000000bb", "2", "unsat")});
  std::string B = reportJson({hashed("00000000000000bb", "2", "unsat"),
                              hashed("00000000000000aa", "1", "sat")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->Deltas.empty());

  // Hashes are the ground truth: identical identity fields but distinct
  // hashes (a spec field jobKey omits changed) do not match.
  std::string C1 = reportJson({hashed("00000000000000aa", "1", "sat")});
  std::string C2 = reportJson({hashed("00000000000000cc", "1", "sat")});
  auto D2 = diffReports(C1, C2);
  ASSERT_TRUE(D2.has_value());
  EXPECT_EQ(D2->MatchedJobs, 0u);
  EXPECT_EQ(D2->OnlyInA.size(), 1u);
  EXPECT_EQ(D2->OnlyInB.size(), 1u);

  // A report from before the field falls back to identity-key matching.
  std::string Old = reportJson({jobJson("1", "unsat", "no-prediction")});
  auto D3 = diffReports(C1, Old);
  ASSERT_TRUE(D3.has_value());
  EXPECT_EQ(D3->MatchedJobs, 1u);
  EXPECT_EQ(D3->Deltas.size(), 1u); // sat -> unsat, matched by key
  EXPECT_TRUE(D3->hasRegressions());
}

TEST(ReportDiff, UnmatchedJobsAreReportedNotRegressions) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable")});
  std::string B = reportJson({jobJson("2", "unsat", "no-prediction")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 0u);
  EXPECT_EQ(D->OnlyInA.size(), 1u);
  EXPECT_EQ(D->OnlyInB.size(), 1u);
  EXPECT_FALSE(D->hasRegressions());
}
