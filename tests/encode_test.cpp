//===- encode_test.cpp - Encoding-pipeline layer tests --------*- C++ -*-===//

#include "apps/AppFramework.h"
#include "encode/EncodingContext.h"
#include "encode/Passes.h"
#include "encode/Pipeline.h"
#include "encode/Prune.h"
#include "engine/ReportDiff.h"
#include "history/BitRel.h"
#include "predict/Predict.h"
#include "predict/PredictSession.h"
#include "support/Rng.h"
#include "support/StrUtil.h"
#include "validate/Validate.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

namespace {

PredictOptions opts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  O.TimeoutMs = 60000;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===
// Transitive closure by repeated squaring
//===----------------------------------------------------------------------===

TEST(Encode, ClosureBySquaringMatchesNaiveClosure) {
  // Fix the base relation as boolean constants; the closure variables'
  // model values must equal the word-parallel Warshall closure.
  Rng Rand(42);
  for (size_t N : {2, 3, 5, 9, 12}) {
    for (int Round = 0; Round < 3; ++Round) {
      BitRel R(N);
      for (size_t I = 0; I < 2 * N; ++I)
        R.set(Rand.below(N), Rand.below(N));

      SmtContext Ctx;
      SmtSolver Solver(Ctx);
      encode::AssertionBuffer Asserts(Solver);
      encode::PairMatrix Base(N, std::vector<SmtExpr>(N));
      for (size_t A = 0; A < N; ++A)
        for (size_t B = 0; B < N; ++B)
          if (A != B)
            Base[A][B] = Ctx.boolVal(R.test(A, B));
      encode::PairMatrix Closed =
          encode::defineClosure(Ctx, Asserts, Base, "t");
      Asserts.flush();

      BitRel Expect = R;
      // Warshall produces reflexive pairs only on cycles; the squaring
      // closure never defines diagonal entries, so compare off-diagonal.
      Expect.closeTransitively();

      ASSERT_EQ(Solver.check(), SmtResult::Sat);
      for (size_t A = 0; A < N; ++A)
        for (size_t B = 0; B < N; ++B) {
          if (A == B)
            continue;
          EXPECT_EQ(Solver.modelBool(Closed[A][B]), Expect.test(A, B))
              << "N=" << N << " edge " << A << "->" << B;
        }
    }
  }
}

//===----------------------------------------------------------------------===
// Atom interning
//===----------------------------------------------------------------------===

TEST(Encode, SmtContextInterningReturnsIdenticalAsts) {
  SmtContext Ctx;
  SmtExpr X = Ctx.intVar("x");
  SmtExpr Y = Ctx.intVar("y");

  SmtExpr Five1 = Ctx.internIntVal(5);
  SmtExpr Five2 = Ctx.internIntVal(5);
  EXPECT_EQ(Five1.Ast, Five2.Ast);

  SmtExpr Lt1 = Ctx.internLt(X, Y);
  SmtExpr Lt2 = Ctx.internLt(X, Y);
  EXPECT_EQ(Lt1.Ast, Lt2.Ast);
  EXPECT_EQ(Lt1.Lits, Lt2.Lits);

  // Distinct operators over the same operands are distinct atoms.
  EXPECT_NE(Ctx.internLt(X, Y).Ast, Ctx.internLe(X, Y).Ast);
  EXPECT_NE(Ctx.internEq(X, Y).Ast, Ctx.internLe(X, Y).Ast);

  // The cache observed the repeats.
  EXPECT_GT(Ctx.internHits(), 0u);
  EXPECT_GT(Ctx.internLookups(), Ctx.internHits());

  // Interned and plain construction agree (Z3 hash-conses ASTs).
  EXPECT_EQ(Ctx.internLt(X, Y).Ast, Ctx.mkLt(X, Y).Ast);
}

TEST(Encode, ContextAtomsAreInterned) {
  History H = depositObserved();
  PredictOptions O = opts(IsolationLevel::Causal, Strategy::ApproxRelaxed);
  SmtContext Ctx;
  SmtSolver Solver(Ctx);
  encode::EncodingContext EC(H, O, Ctx, Solver);
  encode::DeclarePass().run(EC);

  SessionId S = H.txn(1).Session;
  uint32_t Pos = H.txn(1).Events.at(0).Pos;

  EXPECT_EQ(EC.choiceIs(S, Pos, InitTxn).Ast,
            EC.choiceIs(S, Pos, InitTxn).Ast);
  EXPECT_EQ(EC.eventIncluded(S, Pos).Ast, EC.eventIncluded(S, Pos).Ast);
  EXPECT_EQ(EC.beforeBoundary(S, Pos).Ast, EC.beforeBoundary(S, Pos).Ast);

  KeyId K = H.keysRead().at(0);
  ASSERT_TRUE(H.writesKey(1, K));
  EXPECT_EQ(EC.writeIncluded(1, K).Ast, EC.writeIncluded(1, K).Ast);
}

//===----------------------------------------------------------------------===
// Per-pass accounting
//===----------------------------------------------------------------------===

TEST(Encode, PassLiteralsSumToTotal) {
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed})
    for (IsolationLevel L :
         {IsolationLevel::Causal, IsolationLevel::ReadAtomic,
          IsolationLevel::ReadCommitted}) {
      History H = crossReadObserved();
      PredictOptions O = opts(L, S);
      O.GenerateOnly = true;
      Prediction P = predict(H, O);

      ASSERT_EQ(P.Stats.Passes.size(), 4u) << toString(S);
      EXPECT_EQ(P.Stats.Passes[0].Name, "declare");
      EXPECT_EQ(P.Stats.Passes[0].Literals, 0u)
          << "declaration asserts nothing";
      EXPECT_EQ(P.Stats.Passes[1].Name, "feasibility");

      uint64_t Sum = 0;
      for (const PassStats &PS : P.Stats.Passes) {
        EXPECT_GE(PS.Seconds, 0.0);
        Sum += PS.Literals;
      }
      EXPECT_EQ(Sum, P.Stats.NumLiterals)
          << toString(S) << "/" << toString(L);
    }
}

TEST(Encode, PipelineSelectsPassesFromOptions) {
  PredictOptions O = opts(IsolationLevel::ReadCommitted,
                          Strategy::ApproxStrict);
  O.GenerateOnly = true;
  Prediction P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "approx-rank");
  EXPECT_EQ(P.Stats.Passes[3].Name, "read-committed");

  O.Pco = PcoEncoding::Layered;
  P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "approx-layered");

  O.Strat = Strategy::ExactStrict;
  O.Level = IsolationLevel::Causal;
  P = predict(crossReadObserved(), O);
  ASSERT_EQ(P.Stats.Passes.size(), 4u);
  EXPECT_EQ(P.Stats.Passes[2].Name, "exact-strict");
  EXPECT_EQ(P.Stats.Passes[3].Name, "causal");
}

//===----------------------------------------------------------------------===
// Batched assertion (the ablation knob)
//===----------------------------------------------------------------------===

TEST(Encode, BatchedAssertsKeepLiteralsAndVerdict) {
  for (int HistIdx = 0; HistIdx < 3; ++HistIdx) {
    History H = HistIdx == 0   ? depositObserved()
                : HistIdx == 1 ? crossReadObserved()
                               : selfJustifyTrap();
    PredictOptions O = opts(IsolationLevel::Causal, Strategy::ApproxStrict);
    Prediction Plain = predict(H, O);
    O.BatchAsserts = true;
    Prediction Batched = predict(H, O);
    EXPECT_EQ(Plain.Result, Batched.Result);
    EXPECT_EQ(Plain.Stats.NumLiterals, Batched.Stats.NumLiterals);
  }
}

TEST(Encode, AddAllAccountsLiteralsLikeAdd) {
  SmtContext C1, C2;
  auto build = [](SmtContext &Ctx) {
    std::vector<SmtExpr> Es;
    SmtExpr X = Ctx.intVar("x");
    Es.push_back(Ctx.mkLt(Ctx.intVal(0), X));
    Es.push_back(Ctx.mkOr({Ctx.boolVar("a"), Ctx.boolVar("b")}));
    Es.push_back(Ctx.mkEq(X, Ctx.intVal(7)));
    return Es;
  };
  SmtSolver S1(C1), S2(C2);
  for (SmtExpr E : build(C1))
    S1.add(E);
  S2.addAll(build(C2));
  EXPECT_EQ(C1.literalCount(), C2.literalCount());
  EXPECT_EQ(S1.check(), S2.check());
}

//===----------------------------------------------------------------------===
// Report diffing (the regression-gate tool)
//===----------------------------------------------------------------------===

namespace {

std::string jobJson(const char *Seed, const char *Result, const char *Val) {
  return std::string("{\"kind\": \"predict\", \"app\": \"smallbank\", "
                     "\"workload\": \"3x4\", \"seed\": ") +
         Seed + ", \"level\": \"causal\", \"strategy\": \"Approx-Relaxed\", "
                "\"pco\": \"rank\", \"ok\": true, \"result\": \"" +
         Result + "\", \"validation\": \"" + Val + "\"}";
}

std::string reportJson(const std::vector<std::string> &Jobs) {
  std::string Out = "{\"schema\": \"isopredict-campaign-report/1\", "
                    "\"campaign\": \"t\", \"jobs\": [";
  for (size_t I = 0; I < Jobs.size(); ++I)
    Out += (I ? ", " : "") + Jobs[I];
  return Out + "]}";
}

} // namespace

TEST(ReportDiff, FlagsOutcomeRegressions) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string B = reportJson({jobJson("1", "unsat", "no-prediction"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string Error;
  auto D = diffReports(A, B, &Error);
  ASSERT_TRUE(D.has_value()) << Error;
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->hasRegressions());
  EXPECT_EQ(D->numRegressions(), 2u); // result + validation on seed 1.

  // The reverse direction is a change, not a regression.
  auto Rev = diffReports(B, A, &Error);
  ASSERT_TRUE(Rev.has_value()) << Error;
  EXPECT_FALSE(Rev->hasRegressions());
  EXPECT_EQ(Rev->Deltas.size(), 2u);
}

TEST(ReportDiff, MatchesJobsByIdentityNotOrder) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable"),
                              jobJson("2", "unsat", "no-prediction")});
  std::string B = reportJson({jobJson("2", "unsat", "no-prediction"),
                              jobJson("1", "sat",
                                      "validated-unserializable")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->Deltas.empty());
  EXPECT_TRUE(D->OnlyInA.empty());
  EXPECT_TRUE(D->OnlyInB.empty());
}

TEST(ReportDiff, RejectsNonReports) {
  using namespace isopredict::engine;
  std::string Error;
  EXPECT_FALSE(diffReports("not json", "{}", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(diffReports("{\"jobs\": 3}", "{\"jobs\": []}", &Error)
                   .has_value());
}

TEST(ReportDiff, MatchesBySpecHashWhenBothReportsCarryIt) {
  using namespace isopredict::engine;
  auto hashed = [](const char *Hash, const char *Seed, const char *Result) {
    return std::string("{\"spec_hash\": \"") + Hash + "\", " +
           jobJson(Seed, Result, "no-prediction").substr(1);
  };
  // Reordered jobs match by hash, independent of position.
  std::string A = reportJson({hashed("00000000000000aa", "1", "sat"),
                              hashed("00000000000000bb", "2", "unsat")});
  std::string B = reportJson({hashed("00000000000000bb", "2", "unsat"),
                              hashed("00000000000000aa", "1", "sat")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 2u);
  EXPECT_TRUE(D->Deltas.empty());

  // Hashes are the ground truth: identical identity fields but distinct
  // hashes (a spec field jobKey omits changed) do not match.
  std::string C1 = reportJson({hashed("00000000000000aa", "1", "sat")});
  std::string C2 = reportJson({hashed("00000000000000cc", "1", "sat")});
  auto D2 = diffReports(C1, C2);
  ASSERT_TRUE(D2.has_value());
  EXPECT_EQ(D2->MatchedJobs, 0u);
  EXPECT_EQ(D2->OnlyInA.size(), 1u);
  EXPECT_EQ(D2->OnlyInB.size(), 1u);

  // A report from before the field falls back to identity-key matching.
  std::string Old = reportJson({jobJson("1", "unsat", "no-prediction")});
  auto D3 = diffReports(C1, Old);
  ASSERT_TRUE(D3.has_value());
  EXPECT_EQ(D3->MatchedJobs, 1u);
  EXPECT_EQ(D3->Deltas.size(), 1u); // sat -> unsat, matched by key
  EXPECT_TRUE(D3->hasRegressions());
}

TEST(ReportDiff, MatchByKeyOverridesHashMatching) {
  using namespace isopredict::engine;
  auto hashed = [](const char *Hash, const char *Seed, const char *Result) {
    return std::string("{\"spec_hash\": \"") + Hash + "\", " +
           jobJson(Seed, Result, "no-prediction").substr(1);
  };
  // Same identity key, different hashes (a spec knob like prune
  // changed): hash matching finds nothing, key matching pairs them —
  // the CI prune gate depends on this.
  std::string A = reportJson({hashed("00000000000000aa", "1", "sat")});
  std::string B = reportJson({hashed("00000000000000cc", "1", "unsat")});
  auto ByHash = diffReports(A, B);
  ASSERT_TRUE(ByHash.has_value());
  EXPECT_EQ(ByHash->MatchedJobs, 0u);

  auto ByKey = diffReports(A, B, nullptr, /*MatchByKey=*/true);
  ASSERT_TRUE(ByKey.has_value());
  EXPECT_EQ(ByKey->MatchedJobs, 1u);
  EXPECT_TRUE(ByKey->hasRegressions()); // sat -> unsat, now visible
}

TEST(ReportDiff, UnmatchedJobsAreReportedNotRegressions) {
  using namespace isopredict::engine;
  std::string A = reportJson({jobJson("1", "sat", "validated-unserializable")});
  std::string B = reportJson({jobJson("2", "unsat", "no-prediction")});
  auto D = diffReports(A, B);
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->MatchedJobs, 0u);
  EXPECT_EQ(D->OnlyInA.size(), 1u);
  EXPECT_EQ(D->OnlyInB.size(), 1u);
  EXPECT_FALSE(D->hasRegressions());
}

//===----------------------------------------------------------------------===
// Formula minimization (PredictOptions::PruneFormula)
//===----------------------------------------------------------------------===

namespace {

/// A history with fixed single-writer reads. t0 implicitly writes every
/// key, so a read's choice domain (writersOf(k) minus the reader) is a
/// singleton only when no transaction other than the reader itself
/// writes k: t1 read-modify-writes priv (the key's only transactional
/// writer is t1, so its own pre-write read can only observe t0), and t3
/// reads a key nobody ever writes. t2's read of priv has domain
/// {t0, t1} and stays free. The second session works disjoint keys,
/// making every cross-session pair unreachable in the hb skeleton.
History privateKeyObserved() {
  HistoryBuilder B(2);
  B.beginTxn(0); // t1: RMW of priv — its read is fixed to t0.
  B.read("priv", InitTxn, 0);
  B.write("priv", 2);
  B.commit();
  B.beginTxn(0); // t2: reads priv from t1 — domain {t0, t1}, free.
  B.read("priv", 1, 2);
  B.commit();
  B.beginTxn(1); // t3: reads a never-written key — fixed to t0.
  B.read("other", InitTxn, 0);
  B.write("other2", 7);
  B.commit();
  return B.finish();
}

PredictOptions prunedOpts(IsolationLevel L, Strategy S) {
  PredictOptions O = opts(L, S);
  O.PruneFormula = true;
  return O;
}

} // namespace

TEST(Prune, PlanSubstitutesObservedSessionOrder) {
  History H = crossReadObserved();
  encode::EncodingPlan Plan = encode::computeEncodingPlan(H);
  ASSERT_EQ(Plan.N, H.numTxns());
  for (TxnId A = 0; A < H.numTxns(); ++A)
    for (TxnId B = 0; B < H.numTxns(); ++B)
      if (A != B)
        EXPECT_EQ(Plan.soPair(A, B), H.so(A, B))
            << A << "->" << B;
}

TEST(Prune, PlanMarksWrImpossiblePairs) {
  // crossReadObserved: t1 writes x (read by t4), t2 writes y (read by
  // t3); t3/t4 write nothing, so nothing can ever wr-follow them.
  History H = crossReadObserved();
  encode::EncodingPlan Plan = encode::computeEncodingPlan(H);
  EXPECT_TRUE(Plan.wrPossible(1, 4));  // t1 -> t4 via x
  EXPECT_TRUE(Plan.wrPossible(2, 3));  // t2 -> t3 via y
  EXPECT_FALSE(Plan.wrPossible(3, 1)); // t3 writes nothing
  EXPECT_FALSE(Plan.wrPossible(4, 2));
  EXPECT_FALSE(Plan.wrPossible(1, 3)); // t3 never reads x
  // t0 implicitly writes every key, so it can justify any reader.
  EXPECT_TRUE(Plan.wrPossible(InitTxn, 3));
  EXPECT_TRUE(Plan.wrPossible(InitTxn, 4));
}

TEST(Prune, PlanFixesSingleWriterReads) {
  History H = privateKeyObserved();
  encode::EncodingPlan Plan = encode::computeEncodingPlan(H);

  // t1's pre-write read of priv: t1 is priv's only transactional
  // writer, so the domain is {t0} — fixed.
  const Transaction &T1 = H.txn(1);
  ASSERT_EQ(T1.Events.at(0).Kind, EventKind::Read);
  const TxnId *Fixed = Plan.fixedChoice(T1.Session, T1.Events.at(0).Pos);
  ASSERT_NE(Fixed, nullptr);
  EXPECT_EQ(*Fixed, InitTxn);

  // t3's read of other (a key nobody writes): fixed to t0 as well.
  const Transaction &T3 = H.txn(3);
  const TxnId *Fixed3 = Plan.fixedChoice(T3.Session, T3.Events.at(0).Pos);
  ASSERT_NE(Fixed3, nullptr);
  EXPECT_EQ(*Fixed3, InitTxn);

  // t2's read of priv has domain {t0, t1}: free. So is every
  // multi-writer read (both deposit transactions write acct).
  const Transaction &T2 = H.txn(2);
  EXPECT_EQ(Plan.fixedChoice(T2.Session, T2.Events.at(0).Pos), nullptr);
  History D = depositObserved();
  encode::EncodingPlan DPlan = encode::computeEncodingPlan(D);
  const Transaction &DT2 = D.txn(2);
  EXPECT_EQ(DPlan.fixedChoice(DT2.Session, DT2.Events.at(0).Pos), nullptr);
}

TEST(Prune, PlanMarksHbUnreachablePairs) {
  // privateKeyObserved: the sessions touch disjoint keys, so no hb path
  // can cross between them; t0 still reaches everything through so.
  History H = privateKeyObserved();
  encode::EncodingPlan Plan = encode::computeEncodingPlan(H);
  EXPECT_FALSE(Plan.hbPossible(1, 3));
  EXPECT_FALSE(Plan.hbPossible(3, 1));
  EXPECT_FALSE(Plan.hbPossible(2, 3));
  EXPECT_TRUE(Plan.hbPossible(InitTxn, 3));
  EXPECT_TRUE(Plan.hbPossible(1, 2)); // so within s0
}

TEST(Prune, PrunedEncodingShrinksAndCounts) {
  for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                     Strategy::ApproxRelaxed})
    for (IsolationLevel L :
         {IsolationLevel::Causal, IsolationLevel::ReadAtomic,
          IsolationLevel::ReadCommitted}) {
      SCOPED_TRACE(std::string(toString(S)) + "/" + toString(L));
      History H = crossReadObserved();
      PredictOptions O = opts(L, S);
      O.GenerateOnly = true;
      Prediction Plain = predict(H, O);
      O.PruneFormula = true;
      Prediction Pruned = predict(H, O);

      // The plain encoding reports no pruning; the pruned one reports
      // some and emits strictly fewer literals.
      EXPECT_EQ(Plain.Stats.PrunedVars, 0u);
      EXPECT_EQ(Plain.Stats.PrunedLits, 0u);
      EXPECT_GT(Pruned.Stats.PrunedVars, 0u);
      EXPECT_GT(Pruned.Stats.PrunedLits, 0u);
      EXPECT_LT(Pruned.Stats.NumLiterals, Plain.Stats.NumLiterals);

      // Per-pass counters sum to the totals (same contract as
      // PassStats literals vs NumLiterals).
      uint64_t Lits = 0, PV = 0, PL = 0;
      for (const PassStats &PS : Pruned.Stats.Passes) {
        Lits += PS.Literals;
        PV += PS.PrunedVars;
        PL += PS.PrunedLits;
      }
      EXPECT_EQ(Lits, Pruned.Stats.NumLiterals);
      EXPECT_EQ(PV, Pruned.Stats.PrunedVars);
      EXPECT_EQ(PL, Pruned.Stats.PrunedLits);
    }
}

TEST(Prune, PrunedVerdictsMatchOnHandBuiltHistories) {
  // Every canned history, every strategy/level, both pco encodings:
  // the pruned encoding must agree with the default on sat/unsat.
  for (int HistIdx = 0; HistIdx < 5; ++HistIdx) {
    History H = HistIdx == 0   ? depositObserved()
                : HistIdx == 1 ? depositUnserializable()
                : HistIdx == 2 ? crossReadObserved()
                : HistIdx == 3 ? selfJustifyTrap()
                               : privateKeyObserved();
    for (Strategy S : {Strategy::ExactStrict, Strategy::ApproxStrict,
                       Strategy::ApproxRelaxed})
      for (IsolationLevel L :
           {IsolationLevel::Causal, IsolationLevel::ReadAtomic,
            IsolationLevel::ReadCommitted})
        for (PcoEncoding Pco : {PcoEncoding::Rank, PcoEncoding::Layered}) {
          if (S == Strategy::ExactStrict && Pco == PcoEncoding::Layered)
            continue; // Exact ignores the pco encoding.
          SCOPED_TRACE(formatString("hist=%d %s %s %s", HistIdx,
                                    toString(S), toString(L),
                                    toString(Pco)));
          PredictOptions O = opts(L, S);
          O.Pco = Pco;
          Prediction Plain = predict(H, O);
          O.PruneFormula = true;
          Prediction Pruned = predict(H, O);
          EXPECT_EQ(Plain.Result, Pruned.Result);
        }
  }
}

//===----------------------------------------------------------------------===
// Pruning-equivalence sweep over the golden fixtures
//===----------------------------------------------------------------------===

namespace {

struct PruneGoldenCase {
  const char *App;
  IsolationLevel Level;
  Strategy Strat;
  uint64_t Seed;
  const char *Result;
  const char *Boundary;
  const char *Cut;
  const char *Witness;
};

const PruneGoldenCase PruneGoldenCases[] = {
#include "golden_predictions.inc"
};

History fixtureHistory(const std::string &App, uint64_t Seed) {
  auto Application = makeApplication(App);
  DataStore::Options O;
  O.Mode = StoreMode::SerialObserved;
  O.Level = IsolationLevel::Serializable;
  O.Seed = Seed;
  DataStore Store(O);
  return WorkloadRunner::run(*Application, Store,
                             WorkloadConfig::small(Seed))
      .Hist;
}

} // namespace

// The pruned encoding's correctness contract: sat/unsat-equivalence
// with the default encoding on every golden fixture, and every pruned
// Sat model must replay-validate — a non-diverged validating execution
// follows the predicted reads exactly and is therefore unserializable,
// so a "serializable" verdict without divergence would expose an
// unsound pruning rule. (Bit-identity is deliberately NOT part of the
// contract; boundaries, cuts, and witnesses may differ.)
TEST(Prune, PrunedPredictionsMatchGoldenVerdictsAndValidate) {
  constexpr unsigned TimeoutMs = 300000;
  for (const PruneGoldenCase &C : PruneGoldenCases) {
    SCOPED_TRACE(formatString("%s %s %s seed=%llu", C.App,
                              toString(C.Level), toString(C.Strat),
                              static_cast<unsigned long long>(C.Seed)));
    History H = fixtureHistory(C.App, C.Seed);
    PredictOptions O;
    O.Level = C.Level;
    O.Strat = C.Strat;
    O.TimeoutMs = TimeoutMs;
    O.PruneFormula = true;
    Prediction P = predict(H, O);
    EXPECT_STREQ(toString(P.Result), C.Result);

    if (P.Result == SmtResult::Sat) {
      auto Replay = makeApplication(C.App);
      ValidationResult V =
          validatePrediction(*Replay, WorkloadConfig::small(C.Seed), H, P,
                             C.Level, TimeoutMs);
      EXPECT_TRUE(V.St ==
                      ValidationResult::Status::ValidatedUnserializable ||
                  V.Diverged)
          << "non-diverged replay of a pruned prediction was "
             "serializable (validation: "
          << toString(V.St) << ")";
    }
  }
}

// Pruned sessions: the plan is computed once per session and shared by
// every query scope; verdicts must still match the fixtures.
TEST(Prune, PrunedSessionMatchesFixtures) {
  constexpr unsigned TimeoutMs = 300000;
  History H = fixtureHistory("smallbank", 1);
  PredictSession::Options SO;
  SO.PruneFormula = true;
  PredictSession Session(H, SO);
  for (const PruneGoldenCase &C : PruneGoldenCases) {
    if (std::string(C.App) != "smallbank" || C.Seed != 1)
      continue;
    SCOPED_TRACE(formatString("%s %s", toString(C.Level),
                              toString(C.Strat)));
    PredictSession::QueryOptions Q;
    Q.Level = C.Level;
    Q.Strat = C.Strat;
    Q.TimeoutMs = TimeoutMs;
    Prediction P = Session.query(Q);
    EXPECT_STREQ(toString(P.Result), C.Result);
  }
  EXPECT_GT(Session.numQueries(), 0u);
}
