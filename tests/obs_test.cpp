//===- obs_test.cpp - Tracer, metrics, and exporter tests ------*- C++ -*-===//

#include "engine/Engine.h"
#include "obs/Metrics.h"
#include "obs/Tracer.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

using namespace isopredict;
using namespace isopredict::engine;

namespace {

/// A small, fast mixed campaign: two cheap Observe jobs plus one real
/// Predict (touches encode, solver, extract, and validate metrics).
Campaign smallCampaign() {
  Campaign C;
  C.Name = "obs-test";
  for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
    JobSpec J;
    J.Kind = JobKind::Observe;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(Seed);
    C.Jobs.push_back(std::move(J));
  }
  {
    JobSpec J;
    J.Kind = JobKind::Predict;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(2);
    J.Level = IsolationLevel::Causal;
    J.Strat = Strategy::ApproxRelaxed;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  return C;
}

Report runWith(const Campaign &C, unsigned Workers) {
  EngineOptions O;
  O.NumWorkers = Workers;
  return Engine(O).run(C);
}

/// RAII guard: spans recorded by a test never leak into another.
struct TracerSession {
  TracerSession() { obs::Tracer::global().enable(); }
  ~TracerSession() {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Histogram semantics
//===----------------------------------------------------------------------===//

TEST(Metrics, HistogramBucketEdges) {
  // Edges are upper-inclusive: a value lands in the first bucket whose
  // edge it does not exceed.
  using H = obs::Histogram;
  EXPECT_EQ(H::bucketFor(0.0), 0u);
  EXPECT_EQ(H::bucketFor(0.00005), 0u);
  EXPECT_EQ(H::bucketFor(0.0001), 0u); // exactly on the first edge
  EXPECT_EQ(H::bucketFor(0.0002), 1u);
  EXPECT_EQ(H::bucketFor(1.0), 4u);
  EXPECT_EQ(H::bucketFor(1.5), 5u);
  EXPECT_EQ(H::bucketFor(60.0), 6u);
  EXPECT_EQ(H::bucketFor(61.0), H::NumEdges); // overflow bucket
}

TEST(Metrics, HistogramObserveAndReset) {
  obs::Histogram H;
  H.observe(0.0005);
  H.observe(0.0005);
  H.observe(120.0);
  H.observe(-1.0); // clamped to zero, not dropped
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.bucket(0), 1u); // the clamped negative
  EXPECT_EQ(H.bucket(1), 2u);
  EXPECT_EQ(H.bucket(obs::Histogram::NumEdges), 1u);
  EXPECT_NEAR(H.sum(), 120.001, 1e-6);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0.0);
  EXPECT_EQ(H.bucket(1), 0u);
}

TEST(Metrics, RegistryHandlesAreStable) {
  obs::Counter &A = obs::Metrics::global().counter("obs-test.stable");
  obs::Counter &B = obs::Metrics::global().counter("obs-test.stable");
  EXPECT_EQ(&A, &B); // same name, same instrument — call-site caching is safe
  A.inc(3);
  EXPECT_EQ(B.value(), 3u);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(Tracer, SpanNestingAndThreadAttribution) {
  TracerSession Session;

  uint32_t WorkerTid = 0;
  {
    obs::Span Outer("outer", obs::CatEngine);
    {
      obs::Span Inner("inner", obs::CatEncode);
      Inner.arg("detail", "nested");
    }
    std::thread T([&] {
      WorkerTid = obs::Tracer::threadId();
      obs::Span Side("side", obs::CatSolver);
    });
    T.join();
  }

  std::vector<obs::Tracer::SpanRecord> Spans = obs::Tracer::global().spans();
  ASSERT_EQ(Spans.size(), 3u);
  // spans() sorts by start time with longer spans first on ties, so the
  // enclosing span always precedes what it encloses.
  EXPECT_STREQ(Spans[0].Name, "outer");
  EXPECT_STREQ(Spans[1].Name, "inner");
  EXPECT_STREQ(Spans[2].Name, "side");

  // Containment: children start no earlier and end no later.
  EXPECT_GE(Spans[1].StartNs, Spans[0].StartNs);
  EXPECT_LE(Spans[1].StartNs + Spans[1].DurNs,
            Spans[0].StartNs + Spans[0].DurNs);

  // Thread attribution: main-thread spans share a tid, the worker's
  // span carries its own.
  EXPECT_EQ(Spans[0].Tid, obs::Tracer::threadId());
  EXPECT_EQ(Spans[1].Tid, Spans[0].Tid);
  EXPECT_EQ(Spans[2].Tid, WorkerTid);
  EXPECT_NE(Spans[2].Tid, Spans[0].Tid);

  // Args survive into the record.
  ASSERT_EQ(Spans[1].Args.size(), 1u);
  EXPECT_STREQ(Spans[1].Args[0].first, "detail");
  EXPECT_EQ(Spans[1].Args[0].second, "nested");

  // Category roll-up covers exactly the categories that ran.
  std::map<std::string, double> ByCat;
  for (const auto &KV : obs::Tracer::global().categorySeconds())
    ByCat.insert(KV);
  EXPECT_EQ(ByCat.size(), 3u);
  EXPECT_EQ(ByCat.count(obs::CatEngine), 1u);
  EXPECT_EQ(ByCat.count(obs::CatEncode), 1u);
  EXPECT_EQ(ByCat.count(obs::CatSolver), 1u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  {
    obs::Span S("ignored", obs::CatEngine);
    S.arg("key", "value");
  }
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
  // seconds() still measures — span-as-timer works with tracing off.
  obs::Span T("timer", obs::CatEngine);
  EXPECT_GE(T.seconds(), 0.0);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST(Tracer, ChromeTraceIsWellFormedJson) {
  TracerSession Session;
  {
    obs::Span A("alpha", obs::CatEngine);
    A.arg("app", "voter");
    obs::Span B("beta", obs::CatSolver);
  }

  std::string Error;
  std::optional<JsonValue> Doc =
      parseJson(obs::Tracer::global().toChromeTraceJson(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  ASSERT_EQ(Doc->K, JsonValue::Kind::Object);

  const JsonValue *Unit = Doc->field("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->Text, "ms");

  const JsonValue *Events = Doc->field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_EQ(Events->Items.size(), 2u);
  for (const JsonValue &E : Events->Items) {
    ASSERT_EQ(E.K, JsonValue::Kind::Object);
    for (const char *Field : {"name", "cat", "ph", "ts", "dur", "pid", "tid"})
      EXPECT_NE(E.field(Field), nullptr) << Field;
    EXPECT_EQ(E.field("ph")->Text, "X"); // complete events
    // Timestamps are normalized to the enable() epoch: never negative.
    EXPECT_GE(std::stod(E.field("ts")->Text), 0.0);
  }
  // The "alpha" span's arg dictionary survives export.
  const JsonValue *Args = Events->Items[0].field("args");
  ASSERT_NE(Args, nullptr);
  ASSERT_NE(Args->field("app"), nullptr);
  EXPECT_EQ(Args->field("app")->Text, "voter");
}

//===----------------------------------------------------------------------===//
// Engine integration
//===----------------------------------------------------------------------===//

TEST(Metrics, CampaignCountersDeterministicAcrossWorkerCounts) {
  Campaign C = smallCampaign();
  Report R1 = runWith(C, 1);
  Report R2 = runWith(C, 2);

  // The per-run metrics delta attached by Engine::run has identical
  // counter totals regardless of parallelism: the same jobs run the
  // same passes, checks, and replays.
  ASSERT_FALSE(R1.metrics().empty());
  ASSERT_FALSE(R2.metrics().empty());
  EXPECT_EQ(R1.metrics().Counters, R2.metrics().Counters);

  // Histogram *counts* are deterministic too (second sums are not).
  ASSERT_EQ(R1.metrics().Histograms.size(), R2.metrics().Histograms.size());
  for (size_t I = 0; I < R1.metrics().Histograms.size(); ++I) {
    EXPECT_EQ(R1.metrics().Histograms[I].first,
              R2.metrics().Histograms[I].first);
    EXPECT_EQ(R1.metrics().Histograms[I].second.Count,
              R2.metrics().Histograms[I].second.Count);
  }

  // Spot-check the totals against the campaign's shape.
  EXPECT_EQ(R1.metrics().counter("engine.jobs_completed"), C.size());
  // The Predict job checks once; its validation replay may check again
  // (serializability of the replayed history goes through the solver).
  EXPECT_GE(R1.metrics().counter("solver.checks"), 1u);
  EXPECT_EQ(R1.metrics().histogramCount("engine.job_seconds"), C.size());
  EXPECT_GE(R1.metrics().counter("encode.passes"), 1u);
}

TEST(Metrics, SnapshotDeltaSubtractsBaseline) {
  obs::Counter &Twice = obs::Metrics::global().counter("obs-test.delta");
  Twice.inc(5);
  obs::MetricsSnapshot Before = obs::Metrics::global().snapshot();
  Twice.inc(3);
  obs::MetricsSnapshot After = obs::Metrics::global().snapshot();
  obs::MetricsSnapshot D = obs::MetricsSnapshot::delta(Before, After);
  EXPECT_EQ(D.counter("obs-test.delta"), 3u);
}

TEST(Report, DefaultBytesInvariantUnderTracing) {
  Campaign C = smallCampaign();
  std::string Off = runWith(C, 1).toJson();

  std::string On;
  {
    TracerSession Session;
    On = runWith(C, 1).toJson();
    // Tracing actually happened: the run produced engine spans.
    EXPECT_FALSE(obs::Tracer::global().spans().empty());
  }

  // Instrumentation is invisible in default reports: byte-identical
  // with the tracer on or off, and no metrics block leaks in.
  EXPECT_EQ(Off, On);
  EXPECT_EQ(Off.find("\"metrics\""), std::string::npos);

  // With timings requested, the metrics block appears.
  ReportOptions Timed;
  Timed.IncludeTimings = true;
  std::string Full = runWith(C, 1).toJson(Timed);
  EXPECT_NE(Full.find("\"metrics\""), std::string::npos);
  EXPECT_NE(Full.find("\"engine.jobs_completed\""), std::string::npos);
  EXPECT_NE(Full.find("\"solver.check_seconds\""), std::string::npos);
  EXPECT_NE(Full.find("\"solver_stats\""), std::string::npos);
}
