//===- obs_test.cpp - Tracer, metrics, and exporter tests ------*- C++ -*-===//

#include "engine/Engine.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Prometheus.h"
#include "obs/Rolling.h"
#include "obs/Tracer.h"
#include "support/Fs.h"
#include "support/Json.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <unistd.h>

using namespace isopredict;
using namespace isopredict::engine;

namespace {

/// A small, fast mixed campaign: two cheap Observe jobs plus one real
/// Predict (touches encode, solver, extract, and validate metrics).
Campaign smallCampaign() {
  Campaign C;
  C.Name = "obs-test";
  for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
    JobSpec J;
    J.Kind = JobKind::Observe;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(Seed);
    C.Jobs.push_back(std::move(J));
  }
  {
    JobSpec J;
    J.Kind = JobKind::Predict;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(2);
    J.Level = IsolationLevel::Causal;
    J.Strat = Strategy::ApproxRelaxed;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  return C;
}

Report runWith(const Campaign &C, unsigned Workers) {
  EngineOptions O;
  O.NumWorkers = Workers;
  return Engine(O).run(C);
}

/// RAII guard: spans recorded by a test never leak into another.
struct TracerSession {
  TracerSession() { obs::Tracer::global().enable(); }
  ~TracerSession() {
    obs::Tracer::global().disable();
    obs::Tracer::global().setRingCapacity(0);
    obs::Tracer::global().clear();
  }
};

/// RAII guard: the global logger is restored to its defaults (stderr,
/// info, text) when a test that retargeted it finishes.
struct LogSession {
  ~LogSession() {
    std::string Error;
    obs::Log::global().configure(obs::Log::Options(), &Error);
  }
};

std::string scratchFile(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  return pathJoin(testing::TempDir(),
                  formatString("isopredict-obs-%s-%ld-%u", Tag,
                               static_cast<long>(::getpid()),
                               Counter.fetch_add(1)));
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram semantics
//===----------------------------------------------------------------------===//

TEST(Metrics, HistogramBucketEdges) {
  // Edges are upper-inclusive: a value lands in the first bucket whose
  // edge it does not exceed.
  using H = obs::Histogram;
  EXPECT_EQ(H::bucketFor(0.0), 0u);
  EXPECT_EQ(H::bucketFor(0.00005), 0u);
  EXPECT_EQ(H::bucketFor(0.0001), 0u); // exactly on the first edge
  EXPECT_EQ(H::bucketFor(0.0002), 1u);
  EXPECT_EQ(H::bucketFor(1.0), 4u);
  EXPECT_EQ(H::bucketFor(1.5), 5u);
  EXPECT_EQ(H::bucketFor(60.0), 6u);
  EXPECT_EQ(H::bucketFor(61.0), H::NumEdges); // overflow bucket
}

TEST(Metrics, HistogramObserveAndReset) {
  obs::Histogram H;
  H.observe(0.0005);
  H.observe(0.0005);
  H.observe(120.0);
  H.observe(-1.0); // clamped to zero, not dropped
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.bucket(0), 1u); // the clamped negative
  EXPECT_EQ(H.bucket(1), 2u);
  EXPECT_EQ(H.bucket(obs::Histogram::NumEdges), 1u);
  EXPECT_NEAR(H.sum(), 120.001, 1e-6);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0.0);
  EXPECT_EQ(H.bucket(1), 0u);
}

TEST(Metrics, RegistryHandlesAreStable) {
  obs::Counter &A = obs::Metrics::global().counter("obs-test.stable");
  obs::Counter &B = obs::Metrics::global().counter("obs-test.stable");
  EXPECT_EQ(&A, &B); // same name, same instrument — call-site caching is safe
  A.inc(3);
  EXPECT_EQ(B.value(), 3u);
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(Tracer, SpanNestingAndThreadAttribution) {
  TracerSession Session;

  uint32_t WorkerTid = 0;
  {
    obs::Span Outer("outer", obs::CatEngine);
    {
      obs::Span Inner("inner", obs::CatEncode);
      Inner.arg("detail", "nested");
    }
    std::thread T([&] {
      WorkerTid = obs::Tracer::threadId();
      obs::Span Side("side", obs::CatSolver);
    });
    T.join();
  }

  std::vector<obs::Tracer::SpanRecord> Spans = obs::Tracer::global().spans();
  ASSERT_EQ(Spans.size(), 3u);
  // spans() sorts by start time with longer spans first on ties, so the
  // enclosing span always precedes what it encloses.
  EXPECT_STREQ(Spans[0].Name, "outer");
  EXPECT_STREQ(Spans[1].Name, "inner");
  EXPECT_STREQ(Spans[2].Name, "side");

  // Containment: children start no earlier and end no later.
  EXPECT_GE(Spans[1].StartNs, Spans[0].StartNs);
  EXPECT_LE(Spans[1].StartNs + Spans[1].DurNs,
            Spans[0].StartNs + Spans[0].DurNs);

  // Thread attribution: main-thread spans share a tid, the worker's
  // span carries its own.
  EXPECT_EQ(Spans[0].Tid, obs::Tracer::threadId());
  EXPECT_EQ(Spans[1].Tid, Spans[0].Tid);
  EXPECT_EQ(Spans[2].Tid, WorkerTid);
  EXPECT_NE(Spans[2].Tid, Spans[0].Tid);

  // Args survive into the record.
  ASSERT_EQ(Spans[1].Args.size(), 1u);
  EXPECT_STREQ(Spans[1].Args[0].first, "detail");
  EXPECT_EQ(Spans[1].Args[0].second, "nested");

  // Category roll-up covers exactly the categories that ran.
  std::map<std::string, double> ByCat;
  for (const auto &KV : obs::Tracer::global().categorySeconds())
    ByCat.insert(KV);
  EXPECT_EQ(ByCat.size(), 3u);
  EXPECT_EQ(ByCat.count(obs::CatEngine), 1u);
  EXPECT_EQ(ByCat.count(obs::CatEncode), 1u);
  EXPECT_EQ(ByCat.count(obs::CatSolver), 1u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer::global().disable();
  obs::Tracer::global().clear();
  {
    obs::Span S("ignored", obs::CatEngine);
    S.arg("key", "value");
  }
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
  // seconds() still measures — span-as-timer works with tracing off.
  obs::Span T("timer", obs::CatEngine);
  EXPECT_GE(T.seconds(), 0.0);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST(Tracer, ChromeTraceIsWellFormedJson) {
  TracerSession Session;
  {
    obs::Span A("alpha", obs::CatEngine);
    A.arg("app", "voter");
    obs::Span B("beta", obs::CatSolver);
  }

  std::string Error;
  std::optional<JsonValue> Doc =
      parseJson(obs::Tracer::global().toChromeTraceJson(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  ASSERT_EQ(Doc->K, JsonValue::Kind::Object);

  const JsonValue *Unit = Doc->field("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->Text, "ms");

  const JsonValue *Events = Doc->field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  ASSERT_EQ(Events->Items.size(), 2u);
  for (const JsonValue &E : Events->Items) {
    ASSERT_EQ(E.K, JsonValue::Kind::Object);
    for (const char *Field : {"name", "cat", "ph", "ts", "dur", "pid", "tid"})
      EXPECT_NE(E.field(Field), nullptr) << Field;
    EXPECT_EQ(E.field("ph")->Text, "X"); // complete events
    // Timestamps are normalized to the enable() epoch: never negative.
    EXPECT_GE(std::stod(E.field("ts")->Text), 0.0);
  }
  // The "alpha" span's arg dictionary survives export.
  const JsonValue *Args = Events->Items[0].field("args");
  ASSERT_NE(Args, nullptr);
  ASSERT_NE(Args->field("app"), nullptr);
  EXPECT_EQ(Args->field("app")->Text, "voter");
}

//===----------------------------------------------------------------------===//
// Engine integration
//===----------------------------------------------------------------------===//

TEST(Metrics, CampaignCountersDeterministicAcrossWorkerCounts) {
  Campaign C = smallCampaign();
  Report R1 = runWith(C, 1);
  Report R2 = runWith(C, 2);

  // The per-run metrics delta attached by Engine::run has identical
  // counter totals regardless of parallelism: the same jobs run the
  // same passes, checks, and replays.
  ASSERT_FALSE(R1.metrics().empty());
  ASSERT_FALSE(R2.metrics().empty());
  EXPECT_EQ(R1.metrics().Counters, R2.metrics().Counters);

  // Histogram *counts* are deterministic too (second sums are not).
  ASSERT_EQ(R1.metrics().Histograms.size(), R2.metrics().Histograms.size());
  for (size_t I = 0; I < R1.metrics().Histograms.size(); ++I) {
    EXPECT_EQ(R1.metrics().Histograms[I].first,
              R2.metrics().Histograms[I].first);
    EXPECT_EQ(R1.metrics().Histograms[I].second.Count,
              R2.metrics().Histograms[I].second.Count);
  }

  // Spot-check the totals against the campaign's shape.
  EXPECT_EQ(R1.metrics().counter("engine.jobs_completed"), C.size());
  // The Predict job checks once; its validation replay may check again
  // (serializability of the replayed history goes through the solver).
  EXPECT_GE(R1.metrics().counter("solver.checks"), 1u);
  EXPECT_EQ(R1.metrics().histogramCount("engine.job_seconds"), C.size());
  EXPECT_GE(R1.metrics().counter("encode.passes"), 1u);
}

TEST(Metrics, SnapshotDeltaSubtractsBaseline) {
  obs::Counter &Twice = obs::Metrics::global().counter("obs-test.delta");
  Twice.inc(5);
  obs::MetricsSnapshot Before = obs::Metrics::global().snapshot();
  Twice.inc(3);
  obs::MetricsSnapshot After = obs::Metrics::global().snapshot();
  obs::MetricsSnapshot D = obs::MetricsSnapshot::delta(Before, After);
  EXPECT_EQ(D.counter("obs-test.delta"), 3u);
}

TEST(Report, DefaultBytesInvariantUnderTracing) {
  Campaign C = smallCampaign();
  std::string Off = runWith(C, 1).toJson();

  std::string On;
  {
    TracerSession Session;
    On = runWith(C, 1).toJson();
    // Tracing actually happened: the run produced engine spans.
    EXPECT_FALSE(obs::Tracer::global().spans().empty());
  }

  // Instrumentation is invisible in default reports: byte-identical
  // with the tracer on or off, and no metrics block leaks in.
  EXPECT_EQ(Off, On);
  EXPECT_EQ(Off.find("\"metrics\""), std::string::npos);

  // With timings requested, the metrics block appears.
  ReportOptions Timed;
  Timed.IncludeTimings = true;
  std::string Full = runWith(C, 1).toJson(Timed);
  EXPECT_NE(Full.find("\"metrics\""), std::string::npos);
  EXPECT_NE(Full.find("\"engine.jobs_completed\""), std::string::npos);
  EXPECT_NE(Full.find("\"solver.check_seconds\""), std::string::npos);
  EXPECT_NE(Full.find("\"solver_stats\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Labeled families
//===----------------------------------------------------------------------===//

TEST(Metrics, LabeledFamilyCellsAreIsolated) {
  obs::CounterFamily &F = obs::Metrics::global().counterFamily(
      "obs-test.fam.requests", {"tenant", "verb"});
  obs::Counter &A = F.at({"acme", "query"});
  obs::Counter &B = F.at({"beta", "query"});
  EXPECT_NE(&A, &B); // different label tuples never share a cell
  EXPECT_EQ(&A, &F.at({"acme", "query"})); // same tuple, same cell
  A.inc(3);
  B.inc(7);
  EXPECT_EQ(A.value(), 3u);
  EXPECT_EQ(B.value(), 7u);

  // The same name resolves to the same family object (call-site caching
  // with a static reference is safe, exactly like unlabeled metrics).
  obs::CounterFamily &F2 = obs::Metrics::global().counterFamily(
      "obs-test.fam.requests", {"tenant", "verb"});
  EXPECT_EQ(&F, &F2);

  obs::MetricsSnapshot S = obs::Metrics::global().snapshot();
  EXPECT_EQ(S.familyCounter("obs-test.fam.requests", {"acme", "query"}), 3u);
  EXPECT_EQ(S.familyCounter("obs-test.fam.requests", {"beta", "query"}), 7u);
  EXPECT_EQ(S.familyCounter("obs-test.fam.requests", {"nobody", "query"}),
            0u);

  // A family never collides with an unlabeled metric of the same name:
  // the unlabeled counter keeps its own value.
  obs::Counter &Plain =
      obs::Metrics::global().counter("obs-test.fam.requests");
  Plain.inc(100);
  obs::MetricsSnapshot S2 = obs::Metrics::global().snapshot();
  EXPECT_EQ(S2.counter("obs-test.fam.requests"), 100u);
  EXPECT_EQ(S2.familyCounter("obs-test.fam.requests", {"acme", "query"}),
            3u);
}

TEST(Metrics, FamilyDeltaSubtractsCellWise) {
  obs::CounterFamily &F = obs::Metrics::global().counterFamily(
      "obs-test.fam.delta", {"tenant"});
  F.at({"a"}).inc(5);
  obs::MetricsSnapshot Before = obs::Metrics::global().snapshot();
  F.at({"a"}).inc(2);
  F.at({"b"}).inc(9); // a cell born after the baseline
  obs::MetricsSnapshot After = obs::Metrics::global().snapshot();
  obs::MetricsSnapshot D = obs::MetricsSnapshot::delta(Before, After);
  EXPECT_EQ(D.familyCounter("obs-test.fam.delta", {"a"}), 2u);
  EXPECT_EQ(D.familyCounter("obs-test.fam.delta", {"b"}), 9u);
}

TEST(Metrics, FamiliesAppearInMetricsJson) {
  obs::Metrics::global()
      .gaugeFamily("obs-test.fam.gauge", {"tenant"})
      .at({"acme"})
      .set(4);
  obs::MetricsSnapshot S = obs::Metrics::global().snapshot();
  JsonWriter J;
  J.openObject();
  obs::writeMetricsJson(J, S);
  J.closeObject();
  std::string Error;
  std::optional<JsonValue> Doc = parseJson(J.take(), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const JsonValue *Metrics = Doc->field("metrics");
  ASSERT_NE(Metrics, nullptr);
  const JsonValue *Families = Metrics->field("families");
  ASSERT_NE(Families, nullptr);
  const JsonValue *Fam = Families->field("obs-test.fam.gauge");
  ASSERT_NE(Fam, nullptr);
  ASSERT_NE(Fam->field("labels"), nullptr);
  ASSERT_EQ(Fam->field("labels")->Items.size(), 1u);
  EXPECT_EQ(Fam->field("labels")->Items[0].Text, "tenant");
  const JsonValue *Series = Fam->field("series");
  ASSERT_NE(Series, nullptr);
  ASSERT_GE(Series->Items.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Rolling-window histograms
//===----------------------------------------------------------------------===//

TEST(Rolling, WindowMergesOnlyRecentSlices) {
  // Hand-built clock: 60 s window in 5 s slices.
  obs::RollingHistogram R(60, 5);
  auto At = [](uint64_t Sec) { return Sec * 1000000000ull; };
  R.observeAt(0.010, At(100));
  R.observeAt(0.020, At(130));
  R.observeAt(0.040, At(158));

  // All three inside the last minute at t=159.
  obs::RollingHistogram::Snapshot S = R.snapshot(60, At(159));
  EXPECT_EQ(S.Count, 3u);
  EXPECT_NEAR(S.Sum, 0.070, 1e-6);

  // A 30 s window sees only the two recent ones.
  S = R.snapshot(30, At(159));
  EXPECT_EQ(S.Count, 2u);

  // At t=170 the t=100 observation has aged out of the minute.
  S = R.snapshot(60, At(170));
  EXPECT_EQ(S.Count, 2u);

  // Far in the future everything expired.
  S = R.snapshot(60, At(1000));
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(obs::RollingHistogram::percentile(S, 0.99), 0.0);
}

TEST(Rolling, SliceSlotsAreEvictedOnReuse) {
  // 10 s window, 5 s slices: two ring slots. An observation 20 s later
  // reuses slot (epoch % 2) and must not inherit the stale counts.
  obs::RollingHistogram R(10, 5);
  auto At = [](uint64_t Sec) { return Sec * 1000000000ull; };
  R.observeAt(1.0, At(10));
  R.observeAt(2.0, At(30)); // same slot as t=10, different epoch
  obs::RollingHistogram::Snapshot S = R.snapshot(10, At(31));
  EXPECT_EQ(S.Count, 1u);
  EXPECT_NEAR(S.Sum, 2.0, 1e-6);
}

TEST(Rolling, PercentileInterpolatesWithinBucket) {
  obs::RollingHistogram R(60, 5);
  auto At = [](uint64_t Sec) { return Sec * 1000000000ull; };
  // 100 observations of 30 ms: all land in the (0.025, 0.05] bucket.
  for (int I = 0; I < 100; ++I)
    R.observeAt(0.030, At(50));
  obs::RollingHistogram::Snapshot S = R.snapshot(60, At(51));
  ASSERT_EQ(S.Count, 100u);
  double P50 = obs::RollingHistogram::percentile(S, 0.50);
  double P99 = obs::RollingHistogram::percentile(S, 0.99);
  // Interpolation spreads ranks across the bucket, so p50 < p99, and
  // both stay inside the bucket that holds every sample.
  EXPECT_GT(P50, 0.025);
  EXPECT_LE(P50, 0.05);
  EXPECT_GT(P99, P50);
  EXPECT_LE(P99, 0.05);

  // Overflow-bucket ranks floor at the last finite edge.
  obs::RollingHistogram R2(60, 5);
  R2.observeAt(500.0, At(50));
  obs::RollingHistogram::Snapshot S2 = R2.snapshot(60, At(51));
  EXPECT_EQ(obs::RollingHistogram::percentile(S2, 0.99),
            obs::RollingHistogram::Edges[obs::RollingHistogram::NumEdges -
                                         1]);
}

//===----------------------------------------------------------------------===//
// Structured log
//===----------------------------------------------------------------------===//

TEST(Log, NdjsonLinesAreWellFormed) {
  LogSession Session;
  std::string Path = scratchFile("ndjson.log");
  obs::Log::Options O;
  O.Ndjson = true;
  O.Path = Path;
  std::string Error;
  ASSERT_TRUE(obs::Log::global().configure(O, &Error)) << Error;

  obs::Log::global().info("test.event", {{"plain", "value"},
                                         {"tricky", "sp ace \"q\" \\b\nnl"}});
  obs::Log::global().warn("test.warn");

  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;
  std::vector<std::string> Lines;
  for (std::string_view L : splitString(Text, '\n'))
    if (!L.empty())
      Lines.emplace_back(L);
  ASSERT_EQ(Lines.size(), 2u);
  for (const std::string &L : Lines) {
    std::optional<JsonValue> Doc = parseJson(L, &Error);
    ASSERT_TRUE(Doc.has_value()) << Error << ": " << L;
    ASSERT_EQ(Doc->K, JsonValue::Kind::Object);
    for (const char *F : {"ts", "mono_ns", "level", "event", "tid", "fields"})
      EXPECT_NE(Doc->field(F), nullptr) << F;
  }
  std::optional<JsonValue> First = parseJson(Lines[0], &Error);
  EXPECT_EQ(First->field("event")->Text, "test.event");
  EXPECT_EQ(First->field("level")->Text, "info");
  const JsonValue *Fields = First->field("fields");
  ASSERT_NE(Fields, nullptr);
  // Special characters round-trip through the JSON escaping.
  ASSERT_NE(Fields->field("tricky"), nullptr);
  EXPECT_EQ(Fields->field("tricky")->Text, "sp ace \"q\" \\b\nnl");
}

TEST(Log, LevelFiltersAndTextFormat) {
  LogSession Session;
  std::string Path = scratchFile("text.log");
  obs::Log::Options O;
  O.Level = obs::LogLevel::Warn;
  O.Path = Path;
  std::string Error;
  ASSERT_TRUE(obs::Log::global().configure(O, &Error)) << Error;
  EXPECT_FALSE(obs::Log::global().enabled(obs::LogLevel::Info));
  EXPECT_TRUE(obs::Log::global().enabled(obs::LogLevel::Error));

  obs::Log::global().debug("dropped.debug");
  obs::Log::global().info("dropped.info");
  obs::Log::global().warn("kept.warn", {{"k", "v"}, {"quoted", "a b"}});

  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;
  EXPECT_EQ(Text.find("dropped."), std::string::npos);
  ASSERT_NE(Text.find("kept.warn"), std::string::npos);
  EXPECT_NE(Text.find(" WARN "), std::string::npos);
  EXPECT_NE(Text.find(" k=v"), std::string::npos);
  EXPECT_NE(Text.find(" quoted=\"a b\""), std::string::npos);
  EXPECT_NE(Text.find(" tid="), std::string::npos);
  EXPECT_NE(Text.find(" mono_ns="), std::string::npos);
}

TEST(Log, ParseLogLevelNames) {
  obs::LogLevel L;
  EXPECT_TRUE(obs::parseLogLevel("DEBUG", L));
  EXPECT_EQ(L, obs::LogLevel::Debug);
  EXPECT_TRUE(obs::parseLogLevel("warning", L));
  EXPECT_EQ(L, obs::LogLevel::Warn);
  EXPECT_TRUE(obs::parseLogLevel("none", L));
  EXPECT_EQ(L, obs::LogLevel::Off);
  EXPECT_FALSE(obs::parseLogLevel("loud", L));
}

//===----------------------------------------------------------------------===//
// Tracer ring-buffer mode
//===----------------------------------------------------------------------===//

TEST(Tracer, RingModeCapsSpansAndCountsDrops) {
  TracerSession Session;
  obs::Tracer::global().setRingCapacity(8);
  EXPECT_EQ(obs::Tracer::global().ringCapacity(), 8u);

  for (int I = 0; I < 20; ++I)
    obs::Span S(I % 2 ? "odd" : "even", obs::CatEngine);

  // The ring holds exactly its capacity; the excess is accounted, both
  // on the tracer and in the metrics registry.
  EXPECT_EQ(obs::Tracer::global().spans().size(), 8u);
  EXPECT_EQ(obs::Tracer::global().droppedSpans(), 12u);
  obs::MetricsSnapshot S = obs::Metrics::global().snapshot();
  EXPECT_GE(S.counter("tracer.dropped_spans"), 12u);

  // clear() resets the drop accounting with the spans.
  obs::Tracer::global().clear();
  EXPECT_EQ(obs::Tracer::global().droppedSpans(), 0u);
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

TEST(Tracer, FlushChromeTraceDrainsRing) {
  TracerSession Session;
  obs::Tracer::global().setRingCapacity(16);
  { obs::Span A("first", obs::CatEngine); }

  std::string Path = scratchFile("flush.json");
  std::string Error;
  ASSERT_TRUE(obs::Tracer::global().flushChromeTrace(Path, &Error)) << Error;
  // The flush drained the ring; a second batch starts fresh.
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
  { obs::Span B("second", obs::CatSolver); }
  EXPECT_EQ(obs::Tracer::global().spans().size(), 1u);

  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;
  std::optional<JsonValue> Doc = parseJson(Text, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  const JsonValue *Events = Doc->field("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->Items.size(), 1u);
  EXPECT_EQ(Events->Items[0].field("name")->Text, "first");
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(Prometheus, NameSanitizationAndLabelEscaping) {
  EXPECT_EQ(obs::prometheusName("server.query_seconds"),
            "server_query_seconds");
  EXPECT_EQ(obs::prometheusName("a-b:c"), "a_b:c");
  EXPECT_EQ(obs::prometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(obs::prometheusEscapeLabel("q\"uote"), "q\\\"uote");
  EXPECT_EQ(obs::prometheusEscapeLabel("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prometheusEscapeLabel("new\nline"), "new\\nline");
}

TEST(Prometheus, ExpositionShape) {
  // Build a snapshot by hand so the test is independent of the global
  // registry's contents.
  obs::MetricsSnapshot S;
  S.Counters.emplace_back("promtest.requests", 42);
  S.Gauges.emplace_back("promtest.depth", 3);
  obs::HistogramSnapshot H;
  H.Count = 2;
  H.Sum = 0.3;
  H.Buckets[obs::Histogram::bucketFor(0.1)] = 1;
  H.Buckets[obs::Histogram::bucketFor(0.2)] = 1;
  S.Histograms.emplace_back("promtest.seconds", H);
  obs::CounterFamilySnapshot F;
  F.Name = "promtest.requests"; // same name as the unlabeled counter
  F.Keys = {"tenant"};
  F.Cells.emplace_back(std::vector<std::string>{"a\"cme"}, 7);
  S.CounterFamilies.push_back(F);

  std::string Text = obs::toPrometheusText(S);

  // One TYPE line per metric name, even when an unlabeled metric and a
  // family share it; samples are grouped under it.
  EXPECT_EQ(Text.find("# TYPE promtest_requests counter"),
            Text.rfind("# TYPE promtest_requests counter"));
  EXPECT_NE(Text.find("promtest_requests 42"), std::string::npos);
  EXPECT_NE(Text.find("promtest_requests{tenant=\"a\\\"cme\"} 7"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE promtest_depth gauge"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE promtest_seconds histogram"),
            std::string::npos);
  // Cumulative buckets end in the +Inf total, and sum/count follow.
  EXPECT_NE(Text.find("promtest_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("promtest_seconds_count 2"), std::string::npos);
  EXPECT_NE(Text.find("promtest_seconds_sum"), std::string::npos);
  // Buckets are cumulative: the le="1" bucket includes the 0.1 sample.
  EXPECT_NE(Text.find("promtest_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("promtest_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Byte-freeze with every telemetry feature on
//===----------------------------------------------------------------------===//

TEST(Report, DefaultBytesInvariantUnderFullTelemetry) {
  Campaign C = smallCampaign();
  std::string Plain = runWith(C, 1).toJson();

  std::string Loud;
  {
    TracerSession Tracing;
    LogSession Logging;
    obs::Tracer::global().setRingCapacity(64);
    obs::Log::Options O;
    O.Ndjson = true;
    O.Level = obs::LogLevel::Debug;
    O.Path = scratchFile("telemetry.log");
    std::string Error;
    ASSERT_TRUE(obs::Log::global().configure(O, &Error)) << Error;
    obs::Log::global().info("test.noise", {{"k", "v"}});
    obs::Metrics::global()
        .counterFamily("obs-test.fam.noise", {"tenant"})
        .at({"acme"})
        .inc();
    Loud = runWith(C, 1).toJson();
  }

  // Ring tracing, NDJSON logging, and populated labeled families are
  // all invisible in a default report.
  EXPECT_EQ(Plain, Loud);
  EXPECT_EQ(Plain.find("\"families\""), std::string::npos);
}
