//===- end2end_test.cpp - Full pipeline tests over the benchmarks -*- C++ -*-===//
//
// Runs the paper's complete pipeline — observed execution -> predictive
// analysis -> validation — over the four OLTP benchmarks and checks the
// structural guarantees that must hold for every prediction, plus the
// headline per-benchmark results (Voter-causal unsat, rc >= causal,
// relaxed >= strict).
//
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

#include <gtest/gtest.h>
#include <map>

using namespace isopredict;

namespace {

History observedRun(Application &App, const WorkloadConfig &Cfg) {
  DataStore::Options O;
  O.Mode = StoreMode::SerialObserved;
  O.Level = IsolationLevel::Serializable;
  O.Seed = Cfg.Seed;
  DataStore Store(O);
  return WorkloadRunner::run(App, Store, Cfg).Hist;
}

PredictOptions opts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  // Solver timeouts surface as Unknown and are treated like the paper's
  // T/O entries; keep the suite fast.
  O.TimeoutMs = 15000;
  return O;
}

struct PipelineCase {
  std::string AppName;
  uint64_t Seed;
  IsolationLevel Level;
  Strategy Strat;
};

class PipelineTest
    : public ::testing::TestWithParam<
          std::tuple<const char *, uint64_t, int, int>> {
public:
  PipelineCase param() const {
    auto [Name, Seed, L, S] = GetParam();
    return {Name, Seed,
            L == 0 ? IsolationLevel::Causal : IsolationLevel::ReadCommitted,
            S == 0 ? Strategy::ApproxStrict : Strategy::ApproxRelaxed};
  }
};

} // namespace

TEST_P(PipelineTest, PredictionsAreSoundAndMostlyValidate) {
  PipelineCase C = param();
  auto App = makeApplication(C.AppName);
  ASSERT_NE(App, nullptr);
  WorkloadConfig Cfg = WorkloadConfig::small(C.Seed);
  History Observed = observedRun(*App, Cfg);

  Prediction P = predict(Observed, opts(C.Level, C.Strat));
  if (P.Result == SmtResult::Unknown)
    GTEST_SKIP() << "solver timeout (the paper reports these as T/O)";
  if (P.Result == SmtResult::Unsat)
    return;

  // Soundness of the prediction itself.
  EXPECT_TRUE(satisfiesLevel(P.Predicted, C.Level))
      << "prediction violates " << toString(C.Level);
  EXPECT_EQ(checkSerializableSmt(P.Predicted, 60000),
            SerResult::Unserializable)
      << "prediction is not actually unserializable";
  EXPECT_FALSE(P.Witness.empty());

  // Validation must produce a level-conforming execution; it may diverge
  // and occasionally come out serializable (the paper's <1% case).
  auto AppForReplay = makeApplication(C.AppName);
  ValidationResult V = validatePrediction(*AppForReplay, Cfg, Observed, P,
                                          C.Level, 60000);
  ASSERT_NE(V.St, ValidationResult::Status::NoPrediction);
  EXPECT_TRUE(satisfiesLevel(V.Validating, C.Level));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineTest,
    ::testing::Combine(::testing::Values("smallbank", "voter", "tpcc",
                                         "wikipedia"),
                       ::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Range(0, 2), ::testing::Range(0, 2)));

//===----------------------------------------------------------------------===
// Headline aggregate results (deterministic: fixed seeds)
//===----------------------------------------------------------------------===

namespace {

unsigned countSat(const std::string &AppName, IsolationLevel L, Strategy S,
                  unsigned Seeds) {
  unsigned Sat = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    auto App = makeApplication(AppName);
    WorkloadConfig Cfg = WorkloadConfig::small(Seed);
    History Observed = observedRun(*App, Cfg);
    if (predict(Observed, opts(L, S)).Result == SmtResult::Sat)
      ++Sat;
  }
  return Sat;
}

} // namespace

TEST(Headline, VoterHasNoCausalPredictions) {
  // Footnote 5: a single writing transaction cannot yield a causal
  // unserializable prediction.
  EXPECT_EQ(countSat("voter", IsolationLevel::Causal,
                     Strategy::ApproxRelaxed, 5),
            0u);
}

TEST(Headline, VoterAlwaysPredictsUnderRc) {
  EXPECT_EQ(countSat("voter", IsolationLevel::ReadCommitted,
                     Strategy::ApproxStrict, 5),
            5u);
}

TEST(Headline, SmallbankPredictsUnderCausal) {
  EXPECT_GT(countSat("smallbank", IsolationLevel::Causal,
                     Strategy::ApproxRelaxed, 5),
            0u);
}

TEST(Headline, RcPredictsAtLeastAsOftenAsCausal) {
  // Wikipedia is excluded here: its causal queries often hit the solver
  // timeout, which would undercount the causal side arbitrarily.
  for (const char *Name : {"smallbank", "voter"}) {
    unsigned Causal =
        countSat(Name, IsolationLevel::Causal, Strategy::ApproxRelaxed, 3);
    unsigned Rc = countSat(Name, IsolationLevel::ReadCommitted,
                           Strategy::ApproxRelaxed, 3);
    EXPECT_LE(Causal, Rc) << Name;
  }
}

TEST(Headline, RelaxedPredictsAtLeastAsOftenAsStrict) {
  for (const char *Name : {"smallbank", "tpcc"}) {
    unsigned Strict =
        countSat(Name, IsolationLevel::Causal, Strategy::ApproxStrict, 3);
    unsigned Relaxed =
        countSat(Name, IsolationLevel::Causal, Strategy::ApproxRelaxed, 3);
    EXPECT_LE(Strict, Relaxed) << Name;
  }
}
