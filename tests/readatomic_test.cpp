//===- readatomic_test.cpp - Read Atomic extension tests ------*- C++ -*-===//
//
// The paper names read atomic (repeated reads) as a straightforward
// extension of IsoPredict (§8); this reproduction implements it across
// the checker, the store's read legality, and the predictive encoder.
// Strength ordering: serializable > causal > read atomic > rc.
//
//===----------------------------------------------------------------------===//

#include "apps/AppFramework.h"
#include "checker/Checkers.h"
#include "predict/Predict.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

TEST(ReadAtomic, FracturedReadIsNotReadAtomic) {
  // Reading t1's x but the initial y (both written by t1) in one
  // transaction violates atomic visibility, in either read order.
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.write("x", 1);
  B.write("y", 1);
  B.commit();
  B.beginTxn(1);
  B.read("y", InitTxn, 0);
  B.read("x", T1, 1);
  B.commit();
  History H = B.finish();
  EXPECT_FALSE(isReadAtomic(H));
  EXPECT_TRUE(isReadCommitted(H)) << "old-then-new is rc";
}

TEST(ReadAtomic, SessionsNeedNotBeMonotonic) {
  // Unlike causal, read atomic allows a session to read t1's write and
  // *later* (in another transaction) read the initial state.
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.write("x", 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", T1, 1);
  B.commit();
  B.beginTxn(1);
  B.read("x", InitTxn, 0);
  B.commit();
  History H = B.finish();
  EXPECT_TRUE(isReadAtomic(H));
  EXPECT_FALSE(isCausal(H));
  EXPECT_EQ(checkSerializableSmt(H), SerResult::Unserializable);
}

TEST(ReadAtomic, CannedHistoriesRespectStrengthOrdering) {
  for (const History &H :
       {depositObserved(), depositUnserializable(), crossReadObserved(),
        bankDivergenceObserved(), selfJustifyTrap()}) {
    if (isCausal(H)) {
      EXPECT_TRUE(isReadAtomic(H));
    }
    if (isReadAtomic(H)) {
      EXPECT_TRUE(isReadCommitted(H));
    }
  }
}

TEST(ReadAtomic, PredictsTheDepositExample) {
  // Figure 3a is causal and hence read atomic; prediction under the
  // read-atomic level must find it too.
  History H = depositObserved();
  PredictOptions Opts;
  Opts.Level = IsolationLevel::ReadAtomic;
  Opts.Strat = Strategy::ApproxRelaxed;
  Opts.TimeoutMs = 60000;
  Prediction P = predict(H, Opts);
  ASSERT_EQ(P.Result, SmtResult::Sat);
  EXPECT_TRUE(isReadAtomic(P.Predicted));
  EXPECT_EQ(checkSerializableSmt(P.Predicted), SerResult::Unserializable);
}

TEST(ReadAtomic, SingleWriterPredictsUnlikeCausal) {
  // The footnote-5 impossibility is causal-specific: with one writing
  // transaction, read atomic still admits the non-monotonic-session
  // prediction (a later transaction flips to the initial state).
  HistoryBuilder B(2);
  TxnId TW = B.beginTxn(0);
  B.write("v", 1);
  B.commit();
  B.beginTxn(1);
  B.read("v", TW, 1);
  B.commit();
  B.beginTxn(1);
  B.read("v", TW, 1);
  B.commit();
  History H = B.finish();

  PredictOptions Causal;
  Causal.Level = IsolationLevel::Causal;
  Causal.Strat = Strategy::ApproxStrict;
  Causal.TimeoutMs = 60000;
  EXPECT_EQ(predict(H, Causal).Result, SmtResult::Unsat);

  PredictOptions Ra = Causal;
  Ra.Level = IsolationLevel::ReadAtomic;
  Prediction P = predict(H, Ra);
  ASSERT_EQ(P.Result, SmtResult::Sat);
  EXPECT_TRUE(isReadAtomic(P.Predicted));
  EXPECT_EQ(checkSerializableSmt(P.Predicted), SerResult::Unserializable);
}

namespace {
class RaStoreTest : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(RaStoreTest, RandomWeakRunsAreReadAtomic) {
  auto App = makeApplication("smallbank");
  WorkloadConfig Cfg = WorkloadConfig::small(GetParam());
  DataStore::Options O;
  O.Mode = StoreMode::RandomWeak;
  O.Level = IsolationLevel::ReadAtomic;
  O.Seed = GetParam() * 977;
  DataStore Store(O);
  RunResult R = WorkloadRunner::run(*App, Store, Cfg);
  EXPECT_TRUE(isReadAtomic(R.Hist)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaStoreTest,
                         ::testing::Range<uint64_t>(1, 13));
