//===- streaming_test.cpp - Streaming prediction tests --------*- C++ -*-===//
//
// The streaming contract (PredictSession::Options::Streaming):
//  - with a window covering the whole trace, streaming query outcomes
//    equal one-shot predict() on the full history (the CI-gated
//    soundness anchor);
//  - extending by deltas and re-observing from scratch encode the same
//    window and produce the same outcomes, eviction included;
//  - the window sub-history is a deterministic function of the final
//    history (byte-identical traces either way).
// Streaming encodings are sat-equivalent, never bit-identical: these
// tests compare outcomes, not literals or models.
//
//===----------------------------------------------------------------------===//

#include "predict/PredictSession.h"

#include "apps/AppFramework.h"
#include "history/TraceIO.h"
#include "predict/Predict.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

namespace {

/// Shared replay helpers (History.h): prefixOf/deltaOf are the
/// library's historyPrefix/historyDelta under the test's older names.
History prefixOf(const History &Full, TxnId Last) {
  return historyPrefix(Full, Last);
}

History deltaOf(const History &Base, const History &Full, TxnId First) {
  return historyDelta(Base, Full, First);
}

History observeApp(const char *Name, const WorkloadConfig &Cfg,
                   uint64_t StoreSeed) {
  auto App = makeApplication(Name);
  EXPECT_NE(App, nullptr);
  DataStore::Options O;
  O.Mode = StoreMode::RandomWeak;
  O.Level = IsolationLevel::Causal;
  O.Seed = StoreSeed;
  DataStore Store(O);
  return WorkloadRunner::run(*App, Store, Cfg).Hist;
}

PredictSession::QueryOptions queryOpts(IsolationLevel L, Strategy S) {
  PredictSession::QueryOptions Q;
  Q.Level = L;
  Q.Strat = S;
  Q.TimeoutMs = 60000;
  return Q;
}

PredictOptions oneShotOpts(IsolationLevel L, Strategy S) {
  PredictOptions O;
  O.Level = L;
  O.Strat = S;
  O.TimeoutMs = 60000;
  return O;
}

const IsolationLevel Levels[] = {IsolationLevel::Causal,
                                 IsolationLevel::ReadAtomic,
                                 IsolationLevel::ReadCommitted};
const Strategy Strats[] = {Strategy::ApproxRelaxed, Strategy::ApproxStrict,
                           Strategy::ExactStrict};

struct Canned {
  const char *Name;
  History H;
};

std::vector<Canned> cannedHistories() {
  return {{"deposit", depositObserved()},
          {"depositUnser", depositUnserializable()},
          {"crossRead", crossReadObserved()},
          {"bankDivergence", bankDivergenceObserved()},
          {"selfJustify", selfJustifyTrap()}};
}

} // namespace

// W >= trace length: streaming outcomes must equal one-shot predict()
// on the full history, across the fixture grid, pruned and unpruned.
TEST(Streaming, FullWindowMatchesPredict) {
  for (const Canned &C : cannedHistories()) {
    for (bool Prune : {false, true}) {
      PredictSession::Options SO;
      SO.Streaming = true;
      SO.Window = 0; // Unbounded: always covers the trace.
      SO.PruneFormula = Prune;
      PredictSession S(C.H, SO);
      for (IsolationLevel L : Levels)
        for (Strategy St : Strats) {
          Prediction Ref = predict(C.H, oneShotOpts(L, St));
          Prediction Got = S.query(queryOpts(L, St));
          EXPECT_EQ(Got.Result, Ref.Result)
              << C.Name << " level=" << toString(L)
              << " strat=" << toString(St) << " prune=" << Prune;
        }
    }
  }
}

// Extending by deltas answers the same queries as a fresh streaming
// session observing the same prefix from scratch — with a window small
// enough to force evictions and epoch rebuilds along the way.
TEST(Streaming, ExtendMatchesFromScratch) {
  // Small workloads: the point is outcome equivalence across many
  // (app, seed, window, step) combinations, and read-committed solves
  // on large histories run multi-second each (WindowBoundsEncodedTxns
  // covers long traces, causal-only).
  const char *Apps[] = {"smallbank", "tpcc"};
  for (const char *App : Apps)
    for (uint64_t Seed : {1u, 2u}) {
      WorkloadConfig Cfg = WorkloadConfig::small(Seed);
      History Full = observeApp(App, Cfg, Seed * 31 + 5);
      size_t N = Full.numTxns();
      ASSERT_GT(N, 6u);
      for (unsigned W : {0u, 3u}) {
        PredictSession::Options SO;
        SO.Streaming = true;
        SO.Window = W;

        // Extend path: base third, then two delta chunks.
        TxnId CutA = static_cast<TxnId>(N / 3 + 1);
        TxnId CutB = static_cast<TxnId>(2 * N / 3 + 1);
        History Base = prefixOf(Full, CutA);
        PredictSession S(Base, SO);
        std::vector<Prediction> Got;
        std::vector<TxnId> Steps = {CutA, CutB, static_cast<TxnId>(N)};
        History Grown = Base;
        for (size_t I = 0; I < Steps.size(); ++I) {
          if (I > 0) {
            TxnId From = Steps[I - 1], To = Steps[I];
            History Mid = prefixOf(Full, To);
            History Delta = deltaOf(Grown, Mid, From);
            S.extend(Delta);
            Grown.append(Delta);
          }
          Got.push_back(S.query(
              queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed)));
          Got.push_back(S.query(queryOpts(IsolationLevel::ReadCommitted,
                                          Strategy::ApproxRelaxed)));
        }

        // From-scratch path: a fresh streaming session per step.
        size_t GI = 0;
        for (TxnId Step : Steps) {
          History Pfx = prefixOf(Full, Step);
          PredictSession Fresh(Pfx, SO);
          Prediction RefC = Fresh.query(
              queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
          Prediction RefRc = Fresh.query(queryOpts(
              IsolationLevel::ReadCommitted, Strategy::ApproxRelaxed));
          EXPECT_EQ(Got[GI++].Result, RefC.Result)
              << App << " seed=" << Seed << " W=" << W << " step=" << Step;
          EXPECT_EQ(Got[GI++].Result, RefRc.Result)
              << App << " seed=" << Seed << " W=" << W << " step=" << Step;
        }
        // The two paths must also agree on the encoded window itself:
        // eviction is a pure function of the final history.
        EXPECT_EQ(writeTrace(S.window()),
                  writeTrace(PredictSession(prefixOf(Full, N), SO).window()))
            << App << " seed=" << Seed << " W=" << W;
      }
    }
}

// With the window covering the trace, the encoded sub-history is the
// observed history, byte for byte.
TEST(Streaming, FullWindowSubHistoryIsByteIdentical) {
  History Full = observeApp("smallbank", WorkloadConfig::large(7), 99);
  for (unsigned W : {0u, 1000u}) {
    PredictSession::Options SO;
    SO.Streaming = true;
    SO.Window = W;
    PredictSession S(Full, SO);
    EXPECT_EQ(writeTrace(S.window()), writeTrace(Full)) << "W=" << W;
  }
}

// The window bounds the encoded size: kept transactions per session
// never exceed Window + hysteresis, no matter how long the trace grows.
TEST(Streaming, WindowBoundsEncodedTxns) {
  History Full = observeApp("tpcc", WorkloadConfig::large(3), 11);
  unsigned W = 2;
  PredictSession::Options SO;
  SO.Streaming = true;
  SO.Window = W;
  History Base = prefixOf(Full, 4);
  PredictSession S(Base, SO);
  S.query(queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  History Grown = Base;
  bool SawRebuild = false;
  for (TxnId Step = 4; Step < Full.numTxns(); ++Step) {
    History Mid = prefixOf(Full, Step + 1);
    History Delta = deltaOf(Grown, Mid, Step);
    PredictSession::ExtendStats ES = S.extend(Delta);
    Grown.append(Delta);
    SawRebuild |= ES.EpochRebuild;
    unsigned Hyst = std::max(1u, W / 2);
    size_t MaxKept = 1 + Grown.numSessions() * (W + Hyst);
    EXPECT_LE(ES.WindowTxns, MaxKept) << "step=" << Step;
    S.query(queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  }
  EXPECT_TRUE(SawRebuild) << "window never evicted on a long trace";
  EXPECT_EQ(S.numExtends(), Full.numTxns() - 4);
}

// Extending flips a serializable observation into a predictable one:
// the new transaction both defeats the causal fast-path (a second
// writer) and creates the Figure-3 write-skew the analysis must find.
TEST(Streaming, ExtendTurnsPredictionSat) {
  HistoryBuilder B(2);
  B.beginTxn(0);
  B.read("acct", InitTxn, 0);
  B.write("acct", 50);
  B.commit();
  History Base = B.finish();

  PredictSession::Options SO;
  SO.Streaming = true;
  PredictSession S(Base, SO);
  Prediction P0 =
      S.query(queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  EXPECT_EQ(P0.Result, SmtResult::Unsat); // One writer: fast-pathed.

  HistoryBuilder D = HistoryBuilder::extending(S.observed());
  D.beginTxn(1);
  D.read("acct", InitTxn, 0);
  D.write("acct", 60);
  D.commit();
  S.extend(D.finish());

  Prediction P1 =
      S.query(queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  ASSERT_EQ(P1.Result, SmtResult::Sat);
  // The witness speaks full-history ids (remapped from the window).
  ASSERT_FALSE(P1.Witness.empty());
  for (TxnId T : P1.Witness)
    EXPECT_LT(T, S.observed().numTxns());
  EXPECT_EQ(S.observed().numTxns(), 3u);
  EXPECT_EQ(S.numExtends(), 1u);
}

// Deltas arriving before the first query take the cheap path (nothing
// encoded yet) and still answer correctly.
TEST(Streaming, ExtendBeforeFirstQuery) {
  History Full = depositUnserializable();
  History Base = prefixOf(Full, 2);
  PredictSession::Options SO;
  SO.Streaming = true;
  PredictSession S(Base, SO);
  History Delta = deltaOf(Base, Full, 2);
  PredictSession::ExtendStats ES = S.extend(Delta);
  EXPECT_EQ(ES.NumLiterals, 0u); // Base not encoded yet.
  Prediction Got =
      S.query(queryOpts(IsolationLevel::Causal, Strategy::ApproxRelaxed));
  Prediction Ref = predict(Full, oneShotOpts(IsolationLevel::Causal,
                                             Strategy::ApproxRelaxed));
  EXPECT_EQ(Got.Result, Ref.Result);
  EXPECT_EQ(writeTrace(S.window()), writeTrace(Full));
}

// Pruned and unpruned streaming agree on outcomes after extends.
TEST(Streaming, PruneParityAcrossExtends) {
  History Full = observeApp("smallbank", WorkloadConfig::small(5), 17);
  size_t N = Full.numTxns();
  ASSERT_GT(N, 4u);
  TxnId Cut = static_cast<TxnId>(N / 2 + 1);
  for (IsolationLevel L :
       {IsolationLevel::Causal, IsolationLevel::ReadCommitted}) {
    SmtResult Results[2];
    for (bool Prune : {false, true}) {
      PredictSession::Options SO;
      SO.Streaming = true;
      SO.PruneFormula = Prune;
      History Base = prefixOf(Full, Cut);
      PredictSession S(Base, SO);
      S.query(queryOpts(L, Strategy::ApproxRelaxed));
      S.extend(deltaOf(Base, Full, Cut));
      Results[Prune] =
          S.query(queryOpts(L, Strategy::ApproxRelaxed)).Result;
    }
    EXPECT_EQ(Results[0], Results[1]) << "level=" << toString(L);
  }
}
