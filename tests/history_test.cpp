//===- history_test.cpp - History model and trace IO tests ----*- C++ -*-===//

#include "history/Dot.h"
#include "history/History.h"
#include "history/TraceIO.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace isopredict;
using namespace isopredict::testutil;

TEST(History, BuilderAssignsPositionsPerSession) {
  HistoryBuilder B(2);
  TxnId T1 = B.beginTxn(0);
  B.read("x", InitTxn);
  B.write("y", 1);
  B.commit();
  TxnId T2 = B.beginTxn(1);
  B.write("x", 2);
  B.commit();
  History H = B.finish();

  // Session 0: read at 1, write at 2, commit at 3. Session 1 starts its
  // own numbering.
  EXPECT_EQ(H.txn(T1).Events[0].Pos, 1u);
  EXPECT_EQ(H.txn(T1).Events[1].Pos, 2u);
  EXPECT_EQ(H.txn(T1).EndPos, 3u);
  EXPECT_EQ(H.txn(T2).Events[0].Pos, 1u);
  EXPECT_EQ(H.txn(T2).EndPos, 2u);
}

TEST(History, OnlyLastWriteIsAnEvent) {
  HistoryBuilder B(1);
  B.beginTxn(0);
  B.write("x", 1);
  B.write("x", 2);
  B.commit();
  History H = B.finish();
  ASSERT_EQ(H.txn(1).Events.size(), 1u);
  EXPECT_EQ(H.txn(1).Events[0].Val, 2);
  EXPECT_EQ(H.wrPos(1, H.keys().lookup("x")), H.txn(1).Events[0].Pos);
}

TEST(History, SessionOrderAndT0) {
  History H = depositObserved();
  EXPECT_TRUE(H.so(InitTxn, 1));
  EXPECT_TRUE(H.so(InitTxn, 2));
  EXPECT_FALSE(H.so(1, 2)) << "different sessions are not so-ordered";
  EXPECT_FALSE(H.so(1, 1));

  HistoryBuilder B(1);
  TxnId A = B.beginTxn(0);
  B.commit();
  TxnId C = B.beginTxn(0);
  B.commit();
  History H2 = B.finish();
  EXPECT_TRUE(H2.so(A, C));
  EXPECT_FALSE(H2.so(C, A));
}

TEST(History, WritersIncludeT0First) {
  History H = depositObserved();
  KeyId Acct = H.keys().lookup("acct");
  ASSERT_NE(Acct, KeyTable::InvalidKey);
  const std::vector<TxnId> &W = H.writersOf(Acct);
  ASSERT_EQ(W.size(), 3u);
  EXPECT_EQ(W[0], InitTxn);
  EXPECT_TRUE(H.writesKey(InitTxn, Acct)) << "t0 writes every key";
}

TEST(History, WrRelationFollowsReads) {
  History H = depositObserved();
  EXPECT_TRUE(H.wr(InitTxn, 1));
  EXPECT_TRUE(H.wr(1, 2));
  EXPECT_FALSE(H.wr(2, 1));
}

TEST(History, RdPosAndReadAt) {
  History H = crossReadObserved();
  TxnId Reader = 3; // reads y
  KeyId Y = H.keys().lookup("y");
  std::vector<uint32_t> Pos = H.rdPos(Reader, Y);
  ASSERT_EQ(Pos.size(), 1u);
  const Event *E = H.readAt(Reader, Pos[0]);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Key, Y);
  EXPECT_EQ(H.readAt(Reader, 9999), nullptr);
}

TEST(History, TxnAtPosFindsContainingTransaction) {
  History H = bankDivergenceObserved();
  // Session 1 has txns t2 and t3.
  const Transaction *T = H.txnAtPos(1, H.txn(2).Events[0].Pos);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Id, 2u);
  T = H.txnAtPos(1, H.txn(3).EndPos);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Id, 3u);
}

TEST(History, DeclaredSessionsSurviveEmptySessions) {
  HistoryBuilder B(3);
  B.beginTxn(0);
  B.commit();
  History H = B.finish();
  EXPECT_EQ(H.numSessions(), 3u);
}

//===----------------------------------------------------------------------===
// Trace round trips
//===----------------------------------------------------------------------===

TEST(TraceIO, RoundTripPreservesStructure) {
  for (const History &H :
       {depositObserved(), depositUnserializable(), crossReadObserved(),
        bankDivergenceObserved()}) {
    std::string Text = writeTrace(H);
    std::string Error;
    auto Parsed = readTrace(Text, &Error);
    ASSERT_TRUE(Parsed.has_value()) << Error;
    EXPECT_EQ(writeTrace(*Parsed), Text);
    EXPECT_EQ(Parsed->numTxns(), H.numTxns());
    EXPECT_EQ(Parsed->numSessions(), H.numSessions());
  }
}

TEST(TraceIO, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(readTrace("", &Error).has_value());
  EXPECT_FALSE(readTrace("txn 0\ncommit\n", &Error).has_value())
      << "missing history directive";
  EXPECT_FALSE(readTrace("history 1\nread x 0 0\n", &Error).has_value())
      << "read outside txn";
  EXPECT_FALSE(
      readTrace("history 1\ntxn 0\nread x 5 0\ncommit\n", &Error)
          .has_value())
      << "writer id referencing a future transaction";
  EXPECT_FALSE(readTrace("history 1\ntxn 0\nwrite x\ncommit\n", &Error)
                   .has_value())
      << "write missing value";
  EXPECT_FALSE(readTrace("history 1\ntxn 0\nread x 0 0\n", &Error)
                   .has_value())
      << "trace ends inside a transaction";
  EXPECT_FALSE(readTrace("history 1\nfrobnicate\n", &Error).has_value());
}

TEST(TraceIO, CommentsAndBlankLinesIgnored) {
  const char *Text = "# a comment\nhistory 1\n\ntxn 0\n# inner\nwrite x 1\n"
                     "commit\n";
  auto Parsed = readTrace(Text);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->numTxns(), 2u);
}

TEST(TraceIO, SlotsRoundTrip) {
  HistoryBuilder B(1);
  B.beginTxn(0, /*Slot=*/5);
  B.write("x", 1);
  B.commit();
  History H = B.finish();
  auto Parsed = readTrace(writeTrace(H));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->txn(1).Slot, 5u);
}

//===----------------------------------------------------------------------===
// DOT export
//===----------------------------------------------------------------------===

TEST(Dot, ContainsNodesAndEdges) {
  History H = depositObserved();
  std::string Dot = writeDot(H, {{1, 2, "rw_acct", "red", true}}, "test");
  EXPECT_NE(Dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(Dot.find("t0"), std::string::npos);
  EXPECT_NE(Dot.find("wr_acct"), std::string::npos);
  EXPECT_NE(Dot.find("rw_acct"), std::string::npos);
  EXPECT_NE(Dot.find("color=red"), std::string::npos);
  EXPECT_NE(Dot.find("read(acct): 0"), std::string::npos);
}
