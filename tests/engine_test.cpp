//===- engine_test.cpp - Campaign engine tests ----------------*- C++ -*-===//

#include "engine/Engine.h"

#include "engine/JobIo.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace isopredict;
using namespace isopredict::engine;

namespace {

/// A campaign covering every job kind whose outcomes are all decided
/// well within the timeout, so results are solver-schedule-independent.
Campaign mixedCampaign() {
  Campaign C;
  C.Name = "engine-test";
  for (const std::string &App : applicationNames())
    for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
      JobSpec J;
      J.Kind = JobKind::Observe;
      J.App = App;
      J.Cfg = WorkloadConfig::small(Seed);
      C.Jobs.push_back(std::move(J));
    }
  {
    JobSpec J; // A Sat prediction that validates (fast).
    J.Kind = JobKind::Predict;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(2);
    J.Level = IsolationLevel::Causal;
    J.Strat = Strategy::ApproxRelaxed;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  for (uint64_t R = 1; R <= 3; ++R) {
    JobSpec J;
    J.Kind = JobKind::RandomWeak;
    J.App = "smallbank";
    J.Cfg = WorkloadConfig::small(1);
    J.Level = IsolationLevel::Causal;
    J.StoreSeed = R * 1000 + 7;
    J.TimeoutMs = 60000;
    C.Jobs.push_back(std::move(J));
  }
  {
    JobSpec J;
    J.Kind = JobKind::LockingRc;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(1);
    J.StoreSeed = 99;
    C.Jobs.push_back(std::move(J));
  }
  return C;
}

Report runWith(const Campaign &C, unsigned Workers) {
  EngineOptions O;
  O.NumWorkers = Workers;
  return Engine(O).run(C);
}

} // namespace

TEST(Engine, DeterministicAcrossWorkerCounts) {
  Campaign C = mixedCampaign();
  std::string Json1 = runWith(C, 1).toJson();
  std::string Json2 = runWith(C, 2).toJson();
  std::string Json4 = runWith(C, 4).toJson();
  // Byte-identical reports regardless of parallelism: results land in
  // campaign order and timings are excluded by default.
  EXPECT_EQ(Json1, Json2);
  EXPECT_EQ(Json1, Json4);
  EXPECT_NE(Json1.find("\"validation\": \"validated-unserializable\""),
            std::string::npos);
}

TEST(Engine, ResultsLandInCampaignOrder) {
  Campaign C = mixedCampaign();
  Report R = runWith(C, 3);
  ASSERT_EQ(R.size(), C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    EXPECT_EQ(R.results()[I].Spec.Kind, C.Jobs[I].Kind);
    EXPECT_EQ(R.results()[I].Spec.App, C.Jobs[I].App);
    EXPECT_EQ(R.results()[I].Spec.Cfg.Seed, C.Jobs[I].Cfg.Seed);
    EXPECT_TRUE(R.results()[I].Ok);
  }
}

TEST(Engine, QueueDrainsWithMoreJobsThanWorkers) {
  // Many cheap jobs on few workers: every job completes exactly once
  // and the progress callback sees a contiguous completion count.
  Campaign C;
  C.Name = "drain";
  for (uint64_t Seed = 1; Seed <= 23; ++Seed) {
    JobSpec J;
    J.Kind = JobKind::Observe;
    J.App = "voter";
    J.Cfg = WorkloadConfig::small(Seed);
    C.Jobs.push_back(std::move(J));
  }

  std::set<uint64_t> SeenSeeds;
  size_t Calls = 0, MaxDone = 0;
  EngineOptions O;
  O.NumWorkers = 4;
  O.OnJobDone = [&](size_t Done, size_t Total, const JobResult &R) {
    ++Calls;
    MaxDone = std::max(MaxDone, Done);
    EXPECT_EQ(Total, 23u);
    SeenSeeds.insert(R.Spec.Cfg.Seed);
  };
  Report R = Engine(O).run(C);

  ASSERT_EQ(R.size(), 23u);
  EXPECT_EQ(Calls, 23u);
  EXPECT_EQ(MaxDone, 23u);
  EXPECT_EQ(SeenSeeds.size(), 23u); // every job ran exactly once
  for (const JobResult &Res : R.results())
    EXPECT_TRUE(Res.Ok);
}

TEST(Engine, EmptyCampaign) {
  Campaign C;
  C.Name = "empty";
  Report R = runWith(C, 4);
  EXPECT_EQ(R.size(), 0u);
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"num_jobs\": 0"), std::string::npos);
  EXPECT_NE(Json.find("\"jobs\": []"), std::string::npos);
}

TEST(Engine, UnknownApplicationReportsError) {
  Campaign C;
  C.Name = "bad";
  JobSpec J;
  J.App = "no-such-app";
  C.Jobs.push_back(J);
  Report R = runWith(C, 2);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R.results()[0].Ok);
  EXPECT_NE(R.results()[0].Error.find("no-such-app"), std::string::npos);
  EXPECT_NE(R.toJson().find("\"ok\": false"), std::string::npos);
}

TEST(Engine, PredictGridCrossProduct) {
  Campaign C = Campaign::predictGrid(
      "grid", {"smallbank", "voter"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false, true}, 3,
      1234);
  EXPECT_EQ(C.size(), 2u * 2 * 2 * 2 * 3);
  for (const JobSpec &J : C.Jobs) {
    EXPECT_EQ(J.Kind, JobKind::Predict);
    EXPECT_EQ(J.TimeoutMs, 1234u);
    EXPECT_GE(J.Cfg.Seed, 1u);
    EXPECT_LE(J.Cfg.Seed, 3u);
  }
}

TEST(Engine, SharedEncodingsDeterministicAcrossWorkerCounts) {
  // Two share-groups (one per seed), each spanning levels × strategies:
  // the group is the scheduling unit, so shared-mode reports must stay
  // byte-identical no matter how many workers execute the groups.
  Campaign C = Campaign::predictGrid(
      "shared", {"smallbank"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 2, 60000);

  auto runShared = [&](unsigned Workers) {
    EngineOptions O;
    O.NumWorkers = Workers;
    O.ShareEncodings = true;
    return Engine(O).run(C);
  };
  std::string Json1 = runShared(1).toJson();
  std::string Json2 = runShared(2).toJson();
  std::string Json4 = runShared(4).toJson();
  EXPECT_EQ(Json1, Json2);
  EXPECT_EQ(Json1, Json4);
  // At least one query per group reused the shared prefix.
  EXPECT_NE(Json1.find("\"base_prefix_reused\": true"), std::string::npos);
}

TEST(Engine, SharedEncodingsPreserveOutcomes) {
  // Sat/unsat outcomes are part of the session sat-equivalence
  // contract; models (witnesses, validation) may differ, so only the
  // outcome fields are compared against the share-nothing engine.
  Campaign C = Campaign::predictGrid(
      "shared-vs-oneshot", {"smallbank", "voter"},
      {IsolationLevel::Causal, IsolationLevel::ReadCommitted},
      {Strategy::ApproxStrict, Strategy::ApproxRelaxed}, {false}, 2, 60000);

  EngineOptions Off;
  Off.NumWorkers = 2;
  Report Baseline = Engine(Off).run(C);
  EngineOptions On = Off;
  On.ShareEncodings = true;
  Report Shared = Engine(On).run(C);

  ASSERT_EQ(Baseline.size(), Shared.size());
  for (size_t I = 0; I < Baseline.size(); ++I) {
    const JobResult &A = Baseline.results()[I];
    const JobResult &B = Shared.results()[I];
    EXPECT_EQ(specHash(A.Spec), specHash(B.Spec));
    EXPECT_TRUE(B.Ok);
    EXPECT_EQ(A.Outcome, B.Outcome)
        << "outcome changed under --share-encodings for "
        << canonicalSpec(A.Spec);
  }
}

TEST(Campaign, SpecHashIsStableAndDiscriminating) {
  JobSpec A;
  A.Kind = JobKind::Predict;
  A.App = "smallbank";
  A.Cfg = WorkloadConfig::small(3);
  A.Level = IsolationLevel::Causal;
  A.Strat = Strategy::ApproxRelaxed;

  // Equal specs hash equally (the map key property result caching and
  // report matching rely on).
  JobSpec B = A;
  EXPECT_EQ(specHash(A), specHash(B));
  EXPECT_EQ(canonicalSpec(A), canonicalSpec(B));

  // Every outcome-determining field perturbs the hash.
  B = A;
  B.App = "voter";
  EXPECT_NE(specHash(A), specHash(B));
  B = A;
  B.Cfg.Seed = 4;
  EXPECT_NE(specHash(A), specHash(B));
  B = A;
  B.Level = IsolationLevel::ReadCommitted;
  EXPECT_NE(specHash(A), specHash(B));
  B = A;
  B.Strat = Strategy::ExactStrict;
  EXPECT_NE(specHash(A), specHash(B));
  B = A;
  B.Pco = PcoEncoding::Layered;
  EXPECT_NE(specHash(A), specHash(B));
  B = A;
  B.StoreSeed = 7;
  EXPECT_NE(specHash(A), specHash(B));
  // Pruned and unpruned runs have different default-report bytes
  // (literal counts, possibly models), so the flag must discriminate:
  // a pruned run must never answer an unpruned cache lookup.
  B = A;
  B.Prune = true;
  EXPECT_NE(specHash(A), specHash(B));
}

TEST(Report, EmitsSpecHashPerJob) {
  Campaign C;
  C.Name = "hash";
  JobSpec J;
  J.Kind = JobKind::Observe;
  J.App = "voter";
  J.Cfg = WorkloadConfig::small(1);
  C.Jobs.push_back(J);
  Report R = runWith(C, 1);
  std::string Expected =
      "\"spec_hash\": \"" +
      formatString("%016llx",
                   static_cast<unsigned long long>(specHash(J))) +
      "\"";
  EXPECT_NE(R.toJson().find(Expected), std::string::npos);
}

TEST(Report, EmitsToolVersionAndSchema) {
  Campaign C;
  C.Name = "version";
  Report R = runWith(C, 1);
  std::string Json = R.toJson();
  EXPECT_NE(Json.find("\"schema\": \"isopredict-campaign-report/2\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"tool_version\": \"" + std::string(toolVersion()) +
                      "\""),
            std::string::npos);
  // Unsharded reports carry no shard coordinates: byte-identity with
  // merged and 1/1-shard reports depends on their absence.
  EXPECT_EQ(Json.find("\"shard_index\""), std::string::npos);
}

// Golden spec hashes: these exact values are persisted in JSON reports,
// name result-cache entries (<cache>/<tool_version>/<hash>.json), and
// key cross-report job matching. If this test fails, a change to
// canonicalSpec (or the hash) has silently invalidated every existing
// cache and broken report_diff against historical reports — either
// revert the change or bump engine::toolVersion() *and* regenerate
// these constants deliberately.
TEST(Campaign, GoldenSpecHashes) {
  auto hash = [](const JobSpec &S) {
    return formatString("%016llx",
                        static_cast<unsigned long long>(specHash(S)));
  };

  JobSpec Predict; // The all-defaults Predict job.
  Predict.Kind = JobKind::Predict;
  Predict.App = "smallbank";
  Predict.Cfg = WorkloadConfig::small(1);
  EXPECT_EQ(canonicalSpec(Predict),
            "kind=predict;app=smallbank;sessions=3;txns=4;seed=1;"
            "level=causal;strat=Approx-Relaxed;pco=rank;store_seed=1;"
            "timeout_ms=0;validate=1;check_ser=1;prune=0");
  EXPECT_EQ(hash(Predict), "0cc7aab949e15986");

  JobSpec Tpcc;
  Tpcc.Kind = JobKind::Predict;
  Tpcc.App = "tpcc";
  Tpcc.Cfg = WorkloadConfig::large(3);
  Tpcc.Level = IsolationLevel::ReadCommitted;
  Tpcc.Strat = Strategy::ApproxStrict;
  Tpcc.TimeoutMs = 5000;
  EXPECT_EQ(hash(Tpcc), "b0797e50953e05e4");

  JobSpec Exact = Predict;
  Exact.Strat = Strategy::ExactStrict;
  Exact.Pco = PcoEncoding::Layered;
  Exact.Validate = false;
  EXPECT_EQ(hash(Exact), "38cbec66d1c1f95e");

  JobSpec Observe;
  Observe.Kind = JobKind::Observe;
  Observe.App = "voter";
  Observe.Cfg = WorkloadConfig::small(2);
  EXPECT_EQ(hash(Observe), "e12e0d590a12dd5d");

  JobSpec Weak;
  Weak.Kind = JobKind::RandomWeak;
  Weak.App = "wikipedia";
  Weak.Cfg = WorkloadConfig::small(1);
  Weak.Level = IsolationLevel::ReadAtomic;
  Weak.StoreSeed = 1007;
  EXPECT_EQ(hash(Weak), "6437d18955e73895");

  JobSpec Locking;
  Locking.Kind = JobKind::LockingRc;
  Locking.App = "smallbank";
  Locking.Cfg = WorkloadConfig::small(5);
  Locking.StoreSeed = 99;
  Locking.CheckSerializability = false;
  EXPECT_EQ(hash(Locking), "bfb4b7a047b9d336");
}

//===----------------------------------------------------------------------===
// Streaming job kind (JobKind::Stream)
//===----------------------------------------------------------------------===

// Window/chunk are Stream-only spec fields: on every other kind they
// must not perturb the canonical spec, so every pre-streaming hash —
// including the golden ones above — stays valid.
TEST(Campaign, StreamSpecFieldsAreConditional) {
  JobSpec P;
  P.Kind = JobKind::Predict;
  P.App = "smallbank";
  P.Cfg = WorkloadConfig::small(1);
  JobSpec P2 = P;
  P2.Window = 9;
  P2.StreamChunk = 4;
  EXPECT_EQ(canonicalSpec(P), canonicalSpec(P2));
  EXPECT_EQ(specHash(P), specHash(P2));

  JobSpec S = P;
  S.Kind = JobKind::Stream;
  S.Window = 9;
  S.StreamChunk = 4;
  EXPECT_EQ(canonicalSpec(S),
            "kind=stream;app=smallbank;sessions=3;txns=4;seed=1;"
            "level=causal;strat=Approx-Relaxed;pco=rank;store_seed=1;"
            "timeout_ms=0;validate=1;check_ser=1;prune=0;window=9;chunk=4");
  JobSpec S2 = S;
  S2.Window = 10;
  EXPECT_NE(specHash(S), specHash(S2));
  S2 = S;
  S2.StreamChunk = 5;
  EXPECT_NE(specHash(S), specHash(S2));
}

// The incremental extend path and the from-scratch baseline must agree
// on every step's outcome and on the encoded window size — the
// equivalence the CI streaming gate checks at campaign scale.
TEST(Engine, StreamJobMatchesFromScratchBaseline) {
  JobSpec J;
  J.Kind = JobKind::Stream;
  J.App = "smallbank";
  J.Cfg = WorkloadConfig::small(2);
  J.TimeoutMs = 60000;
  J.Window = 2;
  J.StreamChunk = 3;
  JobResult Ext = Engine::runJob(J, /*StreamFromScratch=*/false);
  JobResult Scr = Engine::runJob(J, /*StreamFromScratch=*/true);
  ASSERT_TRUE(Ext.Ok);
  ASSERT_TRUE(Scr.Ok);
  ASSERT_GT(Ext.Steps.size(), 1u);
  ASSERT_EQ(Ext.Steps.size(), Scr.Steps.size());
  for (size_t I = 0; I < Ext.Steps.size(); ++I) {
    EXPECT_EQ(Ext.Steps[I].Outcome, Scr.Steps[I].Outcome) << "step " << I;
    EXPECT_EQ(Ext.Steps[I].Txns, Scr.Steps[I].Txns) << "step " << I;
    EXPECT_EQ(Ext.Steps[I].WindowTxns, Scr.Steps[I].WindowTxns)
        << "step " << I;
  }
  EXPECT_EQ(Ext.Outcome, Scr.Outcome);
  EXPECT_EQ(Ext.Steps.back().Outcome, Ext.Outcome);
}

// Stream job entries round-trip through the JSON wire format exactly,
// per-step fields included — the JobIo invariant.
TEST(Report, StreamResultRoundTrips) {
  JobSpec J;
  J.Kind = JobKind::Stream;
  J.App = "smallbank";
  J.Cfg = WorkloadConfig::small(2);
  J.TimeoutMs = 60000;
  J.Window = 3;
  J.StreamChunk = 4;
  JobResult R = Engine::runJob(J);
  ASSERT_TRUE(R.Ok);

  for (bool Timings : {false, true}) {
    ReportOptions RO;
    RO.IncludeTimings = Timings;
    JsonWriter W;
    W.openObject();
    writeJobFields(W, R, RO);
    W.closeObject();
    std::string Json = W.take();

    std::string Error;
    std::optional<JsonValue> Doc = parseJson(Json, &Error);
    ASSERT_TRUE(Doc) << Error;
    std::optional<JobResult> Back = jobResultFromJson(*Doc, &Error);
    ASSERT_TRUE(Back) << Error;
    EXPECT_EQ(Back->Spec.Kind, JobKind::Stream);
    EXPECT_EQ(Back->Spec.Window, 3u);
    EXPECT_EQ(Back->Spec.StreamChunk, 4u);
    EXPECT_EQ(specHash(Back->Spec), specHash(J));
    ASSERT_EQ(Back->Steps.size(), R.Steps.size());
    for (size_t I = 0; I < R.Steps.size(); ++I) {
      EXPECT_EQ(Back->Steps[I].Outcome, R.Steps[I].Outcome);
      EXPECT_EQ(Back->Steps[I].Txns, R.Steps[I].Txns);
      EXPECT_EQ(Back->Steps[I].WindowTxns, R.Steps[I].WindowTxns);
      if (Timings)
        EXPECT_EQ(Back->Steps[I].Literals, R.Steps[I].Literals);
    }

    JsonWriter W2;
    W2.openObject();
    writeJobFields(W2, *Back, RO);
    W2.closeObject();
    EXPECT_EQ(W2.take(), Json) << "timings=" << Timings;
  }
}
